//! Byte-exact text scanning and numeric conversion.

use crate::{ParseError, ParseErrorKind, ParseWork};

/// True for the separator bytes the formats use (space, tab, newline,
/// carriage return, comma).
#[inline]
pub(crate) fn is_separator(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | b',')
}

/// A scanner over a byte buffer that converts ASCII tokens to binary values
/// while counting the work performed.
///
/// # Example
///
/// ```
/// use morpheus_format::TextScanner;
///
/// let mut s = TextScanner::new(b"12 -3 4.5\n");
/// assert_eq!(s.parse_i64().unwrap(), 12);
/// assert_eq!(s.parse_i64().unwrap(), -3);
/// assert!((s.parse_f64().unwrap() - 4.5).abs() < 1e-12);
/// assert!(s.at_end());
/// assert_eq!(s.work().int_tokens, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TextScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Offset of `buf[0]` within the larger stream (for error reporting in
    /// streaming parses).
    base_offset: usize,
    work: ParseWork,
}

impl<'a> TextScanner<'a> {
    /// Creates a scanner over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self::with_base_offset(buf, 0)
    }

    /// Creates a scanner whose error offsets are shifted by `base_offset`.
    pub fn with_base_offset(buf: &'a [u8], base_offset: usize) -> Self {
        TextScanner {
            buf,
            pos: 0,
            base_offset,
            work: ParseWork::default(),
        }
    }

    /// Current position within the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Work performed so far.
    pub fn work(&self) -> ParseWork {
        self.work
    }

    /// Skips separator bytes.
    pub fn skip_separators(&mut self) {
        let start = self.pos;
        while self.pos < self.buf.len() && is_separator(self.buf[self.pos]) {
            self.pos += 1;
        }
        self.work.bytes_scanned += (self.pos - start) as u64;
    }

    /// True once only separators remain.
    pub fn at_end(&mut self) -> bool {
        self.skip_separators();
        self.pos == self.buf.len()
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.base_offset + self.pos, kind)
    }

    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    /// Parses a (possibly signed) decimal integer token.
    ///
    /// # Errors
    ///
    /// Fails on a non-numeric byte, on overflow, or at end of input.
    pub fn parse_i64(&mut self) -> Result<i64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let mut neg = false;
        match self.peek() {
            Some(b'-') => {
                neg = true;
                self.pos += 1;
            }
            Some(b'+') => {
                self.pos += 1;
            }
            _ => {}
        }
        let digits_start = self.pos;
        let mut magnitude: u64 = 0;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                magnitude = magnitude
                    .checked_mul(10)
                    .and_then(|m| m.checked_add((b - b'0') as u64))
                    .ok_or_else(|| self.err(ParseErrorKind::Overflow))?;
                self.pos += 1;
            } else if is_separator(b) {
                break;
            } else {
                return Err(self.err(ParseErrorKind::UnexpectedChar(b)));
            }
        }
        let ndigits = self.pos - digits_start;
        if ndigits == 0 {
            return Err(match self.peek() {
                Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                None => self.err(ParseErrorKind::UnexpectedEof),
            });
        }
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.int_tokens += 1;
        self.work.int_digits += ndigits as u64;
        let limit = if neg {
            1u64 << 63
        } else {
            (1u64 << 63) - 1
        };
        if magnitude > limit {
            return Err(self.err(ParseErrorKind::Overflow));
        }
        Ok(if neg {
            (magnitude as i64).wrapping_neg()
        } else {
            magnitude as i64
        })
    }

    /// Parses an unsigned decimal integer token.
    ///
    /// # Errors
    ///
    /// Fails on a sign or non-numeric byte, on overflow, or at end of input.
    pub fn parse_u64(&mut self) -> Result<u64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let digits_start = self.pos;
        let mut value: u64 = 0;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                value = value
                    .checked_mul(10)
                    .and_then(|m| m.checked_add((b - b'0') as u64))
                    .ok_or_else(|| self.err(ParseErrorKind::Overflow))?;
                self.pos += 1;
            } else if is_separator(b) {
                break;
            } else {
                return Err(self.err(ParseErrorKind::UnexpectedChar(b)));
            }
        }
        let ndigits = self.pos - digits_start;
        if ndigits == 0 {
            return Err(match self.peek() {
                Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                None => self.err(ParseErrorKind::UnexpectedEof),
            });
        }
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.int_tokens += 1;
        self.work.int_digits += ndigits as u64;
        Ok(value)
    }

    /// Parses a decimal floating-point token (`-12.5`, `3.0e-4`, `7`).
    ///
    /// # Errors
    ///
    /// Fails on a malformed literal or at end of input.
    pub fn parse_f64(&mut self) -> Result<f64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let mut neg = false;
        match self.peek() {
            Some(b'-') => {
                neg = true;
                self.pos += 1;
            }
            Some(b'+') => {
                self.pos += 1;
            }
            _ => {}
        }
        let mut digits = 0u64;
        let mut mantissa: f64 = 0.0;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                mantissa = mantissa * 10.0 + (b - b'0') as f64;
                digits += 1;
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut frac_scale = 1.0f64;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() {
                    mantissa = mantissa * 10.0 + (b - b'0') as f64;
                    frac_scale *= 10.0;
                    digits += 1;
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        if digits == 0 {
            return Err(match self.peek() {
                Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                None => self.err(ParseErrorKind::UnexpectedEof),
            });
        }
        let mut exp: i32 = 0;
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            let mut exp_neg = false;
            match self.peek() {
                Some(b'-') => {
                    exp_neg = true;
                    self.pos += 1;
                }
                Some(b'+') => {
                    self.pos += 1;
                }
                _ => {}
            }
            let mut exp_digits = 0;
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() {
                    exp = exp.saturating_mul(10).saturating_add((b - b'0') as i32);
                    exp_digits += 1;
                    digits += 1;
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if exp_digits == 0 {
                return Err(match self.peek() {
                    Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                    None => self.err(ParseErrorKind::UnexpectedEof),
                });
            }
            if exp_neg {
                exp = -exp;
            }
        }
        // Reject garbage stuck to the token.
        if let Some(b) = self.peek() {
            if !is_separator(b) {
                return Err(self.err(ParseErrorKind::UnexpectedChar(b)));
            }
        }
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.float_tokens += 1;
        self.work.float_digits += digits;
        let mut value = mantissa / frac_scale * 10f64.powi(exp);
        if neg {
            value = -value;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_signed_integers() {
        let mut s = TextScanner::new(b"  42\t-17,+8\n");
        assert_eq!(s.parse_i64().unwrap(), 42);
        assert_eq!(s.parse_i64().unwrap(), -17);
        assert_eq!(s.parse_i64().unwrap(), 8);
        assert!(s.at_end());
    }

    #[test]
    fn parses_u64_and_rejects_sign() {
        let mut s = TextScanner::new(b"18446744073709551615");
        assert_eq!(s.parse_u64().unwrap(), u64::MAX);
        let mut s = TextScanner::new(b"-1");
        assert!(matches!(
            s.parse_u64().unwrap_err().kind,
            ParseErrorKind::UnexpectedChar(b'-')
        ));
    }

    #[test]
    fn parses_extreme_i64() {
        let mut s = TextScanner::new(b"-9223372036854775808 9223372036854775807");
        assert_eq!(s.parse_i64().unwrap(), i64::MIN);
        assert_eq!(s.parse_i64().unwrap(), i64::MAX);
    }

    #[test]
    fn integer_overflow_detected() {
        let mut s = TextScanner::new(b"9223372036854775808");
        assert_eq!(s.parse_i64().unwrap_err().kind, ParseErrorKind::Overflow);
        let mut s = TextScanner::new(b"99999999999999999999999");
        assert_eq!(s.parse_u64().unwrap_err().kind, ParseErrorKind::Overflow);
    }

    #[test]
    fn parses_floats() {
        let cases: [(&[u8], f64); 7] = [
            (b"0", 0.0),
            (b"3.5", 3.5),
            (b"-2.25", -2.25),
            (b"1e3", 1000.0),
            (b"2.5e-2", 0.025),
            (b"+4.0E+1", 40.0),
            (b"123456.789", 123456.789),
        ];
        for (text, want) in cases {
            let mut s = TextScanner::new(text);
            let got = s.parse_f64().unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-12,
                "{:?} -> {got}, want {want}",
                std::str::from_utf8(text).unwrap()
            );
        }
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(TextScanner::new(b"12x").parse_i64().is_err());
        assert!(TextScanner::new(b"abc").parse_f64().is_err());
        assert!(TextScanner::new(b".").parse_f64().is_err());
        assert!(TextScanner::new(b"1e").parse_f64().is_err());
        assert!(TextScanner::new(b"").parse_i64().is_err());
        assert!(TextScanner::new(b"-").parse_i64().is_err());
    }

    #[test]
    fn error_offsets_account_for_base() {
        let mut s = TextScanner::with_base_offset(b"zz", 100);
        assert_eq!(s.parse_i64().unwrap_err().offset, 100);
    }

    #[test]
    fn work_counts_every_byte_once() {
        let text = b" 12 34.5\t-6\n";
        let mut s = TextScanner::new(text);
        s.parse_i64().unwrap();
        s.parse_f64().unwrap();
        s.parse_i64().unwrap();
        assert!(s.at_end());
        let w = s.work();
        assert_eq!(w.bytes_scanned, text.len() as u64);
        assert_eq!(w.int_tokens, 2);
        assert_eq!(w.float_tokens, 1);
        assert_eq!(w.int_digits, 3);
        assert_eq!(w.float_digits, 3);
    }
}
