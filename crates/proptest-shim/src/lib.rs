//! A small, dependency-free re-implementation of the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The build environment has no access to crates.io, so the real proptest
//! cannot be fetched. This shim keeps the property-test sources unchanged:
//! it provides `proptest!`, `prop_assert*`, `prop_oneof!`, `Just`, `any`,
//! range/tuple/collection strategies, and `prop_map`, all driven by a
//! deterministic SplitMix64 generator seeded per test from the test's
//! module path. There is no shrinking: a failing case reports its case
//! index and the generated inputs via the panic message instead.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a stable hash of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a, good enough to decorrelate per-test streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() needs a positive bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a property-test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion or was explicitly failed.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// An explicit failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one test argument.
///
/// Unlike real proptest there is no shrinking; `generate` is the whole
/// contract.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-range values; property tests here never rely on
        // NaN/infinity generation.
        let mag = rng.unit_f64() * 1e18;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
arbitrary_tuple!(A);
arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);
arbitrary_tuple!(A, B, C, D, E);
arbitrary_tuple!(A, B, C, D, E, F);

/// Uniform sampling from integer and float ranges.
pub trait SampleRange: Sized {
    /// A uniform value in `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128);
                assert!(span > 0, "empty range");
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample_range(lo: f64, hi: f64, rng: &mut TestRng) -> f64 {
        assert!(hi > lo, "empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl SampleRange for f32 {
    fn sample_range(lo: f32, hi: f32, rng: &mut TestRng) -> f32 {
        f64::sample_range(lo as f64, hi as f64, rng) as f32
    }
}

impl<T: SampleRange + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if hi == u64::MAX && lo == 0 {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

macro_rules! range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}
range_inclusive!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! strategy_tuple {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_tuple!((A, 0));
strategy_tuple!((A, 0), (B, 1));
strategy_tuple!((A, 0), (B, 1), (C, 2));
strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));
strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds a weighted union; weights must sum to a positive value.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        OneOf { choices, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.choices {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use super::{SampleRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Size specification: a fixed length or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            usize::sample_range(self.lo, self.hi_exclusive, rng)
        }
    }

    /// Strategy yielding `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy yielding `HashSet`s of values from `element`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A hash set with a size drawn from `size`. If the element domain is
    /// too small to reach the drawn size, the set saturates (mirrors
    /// proptest's behaviour closely enough for these tests).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let want = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?}, {}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Weighted (`w => strategy`) or uniform choice between strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_>)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs the
/// body for `cases` generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            cfg.cases
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 3usize).generate(&mut rng);
            assert_eq!(v.len(), 3);
            let w = crate::collection::vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&w.len()));
            let s = crate::collection::hash_set(0u64..1000, 2..6).generate(&mut rng);
            assert!(s.len() < 6);
        }
    }

    #[test]
    fn oneof_honours_zero_weight_absence() {
        let strat = prop_oneof![
            1 => Just(1u8),
            3 => Just(2u8),
        ];
        let mut rng = TestRng::new(3);
        let mut twos = 0;
        for _ in 0..1000 {
            if strat.generate(&mut rng) == 2u8 {
                twos += 1;
            }
        }
        assert!((600..900).contains(&twos), "weighting off: {twos}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(v in 0u32..100, pair in (any::<u8>(), 1u8..4)) {
            prop_assert!(v < 100);
            prop_assert!(pair.1 >= 1 && pair.1 < 4);
        }
    }
}
