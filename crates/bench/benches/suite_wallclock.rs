//! Criterion: wall-clock of a full suite sweep, sequential vs parallel.
//!
//! This measures the real (host) time of the fan-out machinery every fig*
//! binary now uses — the same `run_suite_parallel` call, at `--jobs 1`
//! versus multiple workers — so the speedup of the parallel driver is a
//! recorded number rather than folklore.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use morpheus::Mode;
use morpheus_bench::{run_mode, Harness};
use morpheus_workloads::suite;
use std::hint::black_box;

fn bench_suite(c: &mut Criterion) {
    let benches = suite();
    let mut g = c.benchmark_group("suite_wallclock");
    g.throughput(Throughput::Elements(benches.len() as u64));
    for jobs in [1usize, 4] {
        let h = Harness {
            scale: 4096,
            seed: 42,
            jobs,
            faults: None,
        };
        g.bench_function(format!("conventional_jobs_{jobs}"), |b| {
            b.iter(|| {
                h.run_suite_parallel(black_box(&benches), |bench| {
                    run_mode(&h, bench, Mode::Conventional)
                        .report
                        .phases
                        .total_s()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
