//! Property tests for the functional kernels: mathematical invariants that
//! must hold for any generated input.

use morpheus_format::{parse_buffer, FieldKind, Schema, TextWriter};
use morpheus_workloads::{graph, kmeans, scan, sort, spmv};
use proptest::prelude::*;

fn edges_text(pairs: &[(u16, u16)]) -> Vec<u8> {
    let mut w = TextWriter::new();
    for (a, b) in pairs {
        w.write_u64(*a as u64);
        w.sep();
        w.write_u64(*b as u64);
        w.newline();
    }
    w.into_bytes()
}

proptest! {
    /// The CSR adjacency preserves the edge multiset exactly.
    #[test]
    fn csr_preserves_edge_multiset(
        pairs in proptest::collection::vec((0u16..200, 0u16..200), 1..300),
    ) {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let (p, _) = parse_buffer(&edges_text(&pairs), &schema).unwrap();
        let g = graph::Csr::from_edges(&p);
        let mut got: Vec<(u32, u32)> = (0..g.vertices())
            .flat_map(|v| g.neighbours(v).iter().map(move |t| (v as u32, *t)))
            .collect();
        let mut want: Vec<(u32, u32)> =
            pairs.iter().map(|(a, b)| (*a as u32, *b as u32)).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// PageRank is a probability distribution: ranks sum to 1 and are all
    /// positive, for any graph.
    #[test]
    fn pagerank_is_a_distribution(
        pairs in proptest::collection::vec((0u16..64, 0u16..64), 1..200),
    ) {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let (p, _) = parse_buffer(&edges_text(&pairs), &schema).unwrap();
        let r = graph::pagerank(&p, 15);
        // The summary carries the top rank; re-derive the sum invariant by
        // checking the digest is stable and the top rank is a plausible
        // probability.
        let top: f64 = r
            .summary
            .split("rank ")
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        prop_assert!(top > 0.0 && top <= 1.0, "{}", r.summary);
    }

    /// BFS never reaches more vertices than exist and the depth is below
    /// the vertex count.
    #[test]
    fn bfs_reachability_bounds(
        pairs in proptest::collection::vec((0u16..100, 0u16..100), 1..200),
    ) {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let (p, _) = parse_buffer(&edges_text(&pairs), &schema).unwrap();
        let r = graph::bfs(&p);
        let part = r.summary.split("reached ").nth(1).unwrap();
        let reached: u64 = part.split('/').next().unwrap().parse().unwrap();
        let total: u64 = part
            .split('/')
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .replace(',', "")
            .parse()
            .unwrap();
        prop_assert!(reached <= total);
        let depth: u64 = r.summary.split("depth ").nth(1).unwrap().parse().unwrap();
        prop_assert!(depth < total.max(1));
    }

    /// The sort kernel's digest is permutation-invariant and its reported
    /// min/max agree with std.
    #[test]
    fn sort_agrees_with_std(mut vals in proptest::collection::vec(0u32..1_000_000, 1..300)) {
        let schema = Schema::new(vec![FieldKind::U32]);
        let text = |vs: &[u32]| {
            let mut w = TextWriter::new();
            for v in vs {
                w.write_u64(*v as u64);
                w.newline();
            }
            w.into_bytes()
        };
        let (p1, _) = parse_buffer(&text(&vals), &schema).unwrap();
        let a = sort::sort(&p1, "sort");
        vals.reverse();
        let (p2, _) = parse_buffer(&text(&vals), &schema).unwrap();
        let b = sort::sort(&p2, "sort");
        prop_assert_eq!(a.digest, b.digest);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let has_min = a.summary.contains(&format!("min {}", sorted[0]));
        let has_max = a.summary.contains(&format!("max {}", sorted[sorted.len() - 1]));
        prop_assert!(has_min, "{}", a.summary);
        prop_assert!(has_max, "{}", a.summary);
    }

    /// Word counts sum to the token count.
    #[test]
    fn wordcount_conserves_tokens(vals in proptest::collection::vec(0u32..50, 1..300)) {
        let schema = Schema::new(vec![FieldKind::U32]);
        let mut w = TextWriter::new();
        for v in &vals {
            w.write_u64(*v as u64);
            w.newline();
        }
        let (p, _) = parse_buffer(w.as_bytes(), &schema).unwrap();
        let r = scan::wordcount(&p);
        let has_tokens = r.summary.contains(&format!("{} tokens", vals.len()));
        prop_assert!(has_tokens, "{}", r.summary);
        // Distinct count can never exceed token count.
        let distinct: usize = r
            .summary
            .split(", ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        prop_assert!(distinct <= vals.len());
    }

    /// SpMV is linear: scaling every value scales |y| by the same factor.
    #[test]
    fn spmv_is_linear(
        triples in proptest::collection::vec((0u16..32, 0u16..32, -100i32..100), 1..100),
    ) {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32, FieldKind::F64]);
        let text = |scale: f64| {
            let mut w = TextWriter::new();
            for (r, c, v) in &triples {
                w.write_u64(*r as u64);
                w.sep();
                w.write_u64(*c as u64);
                w.sep();
                w.write_f64(*v as f64 * scale, 1);
                w.newline();
            }
            w.into_bytes()
        };
        let norm = |summary: &str| -> f64 {
            summary.split("|y| = ").nth(1).unwrap().parse().unwrap()
        };
        let (p1, _) = parse_buffer(&text(1.0), &schema).unwrap();
        let (p3, _) = parse_buffer(&text(3.0), &schema).unwrap();
        let n1 = norm(&spmv::spmv(&p1).summary);
        let n3 = norm(&spmv::spmv(&p3).summary);
        prop_assert!((n3 - 3.0 * n1).abs() <= 0.02 * n1.max(1.0), "{n3} vs 3*{n1}");
    }

    /// k-means inertia is non-negative and k never exceeds the point count.
    #[test]
    fn kmeans_invariants(
        points in proptest::collection::vec((0i32..1000, 0i32..1000), 1..120),
        k in 1usize..10,
    ) {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::I32, FieldKind::I32]);
        let mut w = TextWriter::new();
        for (i, (x, y)) in points.iter().enumerate() {
            w.write_u64(i as u64);
            w.sep();
            w.write_i64(*x as i64);
            w.sep();
            w.write_i64(*y as i64);
            w.newline();
        }
        let (p, _) = parse_buffer(w.as_bytes(), &schema).unwrap();
        let r = kmeans::kmeans(&p, k, 6);
        let inertia: f64 = r.summary.split("inertia ").nth(1).unwrap().parse().unwrap();
        prop_assert!(inertia >= 0.0);
        let used_k: usize = r
            .summary
            .split("k=").nth(1).unwrap().split(',').next().unwrap().parse().unwrap();
        prop_assert!(used_k <= points.len());
    }
}
