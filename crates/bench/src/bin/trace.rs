//! Structured-trace exporter and differ (the observability entry point).
//!
//! Two sub-commands share one strict flag grammar (unknown flags and
//! malformed values exit 2, like every other figure binary):
//!
//! * `trace --app <name> [--mode M] [--trace-out f.json]` — run one suite
//!   application with the tracer enabled, write the span-level event log
//!   as Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`)
//!   and print the per-track occupancy summary.
//! * `trace --diff a.json b.json` — re-import two exported traces and
//!   print a per-layer, per-event-name delta table.

use morpheus::Mode;
use morpheus_bench::Harness;
use morpheus_simcore::{render_error_chain, render_trace_diff, TraceLog, Tracer};
use morpheus_workloads::{run_benchmark, suite};

const USAGE: &str = "usage: trace --app <name> [--mode conventional|morpheus|morpheus+p2p]
             [--trace-out <path>] [--summary-width N] [--scale N] [--seed N] [--jobs N]
             [--faults SPEC]
       trace --diff <a.json> <b.json>";

/// What one invocation was asked to do.
#[derive(Debug)]
enum Cmd {
    Run {
        app: String,
        mode: Mode,
        trace_out: Option<String>,
        summary_width: usize,
        harness: Harness,
    },
    Diff {
        a: String,
        b: String,
    },
}

/// The flag grammar, separated from process state so tests can drive it.
fn parse(args: &[String]) -> Result<Cmd, String> {
    fn value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} requires a value"))
    }
    let mut app: Option<String> = None;
    let mut mode = Mode::Morpheus;
    let mut trace_out: Option<String> = None;
    let mut summary_width = 48usize;
    let mut diff: Option<(String, String)> = None;
    let mut harness_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--app" => app = Some(value("--app", &mut it)?.clone()),
            "--mode" => {
                let v = value("--mode", &mut it)?;
                mode = match v.as_str() {
                    "conventional" => Mode::Conventional,
                    "morpheus" => Mode::Morpheus,
                    "morpheus+p2p" => Mode::MorpheusP2P,
                    other => {
                        return Err(format!(
                            "--mode expects conventional|morpheus|morpheus+p2p, got {other:?}"
                        ))
                    }
                };
            }
            "--trace-out" => trace_out = Some(value("--trace-out", &mut it)?.clone()),
            "--summary-width" => {
                let v = value("--summary-width", &mut it)?;
                summary_width = v.parse().map_err(|_| {
                    format!("--summary-width expects a positive integer, got {v:?}")
                })?;
                if summary_width < 8 {
                    return Err("--summary-width must be >= 8".into());
                }
            }
            "--diff" => {
                let a = value("--diff", &mut it)?.clone();
                let b = it.next().ok_or("--diff requires two trace files")?.clone();
                diff = Some((a, b));
            }
            // Harness flags: re-validated by the shared grammar below so
            // `--scale 0` fails here exactly as it does in every figure
            // binary.
            "--scale" | "--seed" | "--jobs" | "--faults" => {
                let v = value(arg, &mut it)?;
                harness_args.push(arg.clone());
                harness_args.push(v.clone());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if let Some((a, b)) = diff {
        if app.is_some() || trace_out.is_some() {
            return Err("--diff cannot be combined with run flags".into());
        }
        return Ok(Cmd::Diff { a, b });
    }
    let app = app.ok_or("missing required flag --app (or use --diff)")?;
    let harness = Harness::parse(&harness_args, &[]).map_err(|e| e.0)?;
    Ok(Cmd::Run {
        app,
        mode,
        trace_out,
        summary_width,
        harness,
    })
}

fn load_trace(path: &str) -> TraceLog {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    TraceLog::from_chrome_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = parse(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });
    match cmd {
        Cmd::Diff { a, b } => {
            let (la, lb) = (load_trace(&a), load_trace(&b));
            println!(
                "trace diff: a = {a} ({} events), b = {b} ({} events)",
                la.len(),
                lb.len()
            );
            print!("{}", render_trace_diff(&la, &lb));
        }
        Cmd::Run {
            app,
            mode,
            trace_out,
            summary_width,
            harness,
        } => {
            let benches = suite();
            let Some(bench) = benches.iter().find(|b| b.name == app) else {
                let names: Vec<&str> = benches.iter().map(|b| b.name).collect();
                eprintln!("error: unknown app {app:?} (one of: {})", names.join(", "));
                std::process::exit(2);
            };
            if mode == Mode::MorpheusP2P && bench.parallel_label != "CUDA" {
                eprintln!(
                    "error: --mode morpheus+p2p needs a CUDA app; {app} is {}",
                    bench.parallel_label
                );
                std::process::exit(2);
            }
            let mut sys = harness.app_system(bench);
            sys.set_tracer(Tracer::enabled());
            let outcome = match run_benchmark(&mut sys, bench, mode) {
                Ok(o) => o,
                Err(e) => {
                    // Injected faults can exhaust every recovery path; that
                    // is a clean failure, reported as the full cause chain.
                    eprintln!("error: run failed: {}", render_error_chain(&e));
                    std::process::exit(1);
                }
            };
            let log = sys.tracer().take();
            println!(
                "{app} ({mode}, scale 1/{}): {} events across layers [{}]",
                harness.scale,
                log.len(),
                log.layers_present()
                    .iter()
                    .map(|l| l.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!(
                "phases: deserialization {:.6}s, total {:.6}s",
                outcome.report.phases.deserialization_s,
                outcome.report.phases.total_s()
            );
            if harness.faults.is_some() {
                println!("faults: {}", outcome.report.faults);
                if let Some(cause) = sys.last_fallback_cause() {
                    println!("fallback cause: {cause}");
                }
            }
            println!();
            print!("{}", log.summary(summary_width));
            if let Some(path) = trace_out {
                std::fs::write(&path, log.to_chrome_json()).unwrap_or_else(|e| {
                    eprintln!("error: writing {path}: {e}");
                    std::process::exit(1);
                });
                println!("\nwrote Chrome trace-event JSON to {path} (load in Perfetto)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_run_defaults() {
        let cmd = parse(&argv(&["--app", "bfs"])).expect("valid");
        match cmd {
            Cmd::Run {
                app,
                mode,
                trace_out,
                summary_width,
                ..
            } => {
                assert_eq!(app, "bfs");
                assert_eq!(mode, Mode::Morpheus);
                assert!(trace_out.is_none());
                assert_eq!(summary_width, 48);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parse_full_run_grammar() {
        let cmd = parse(&argv(&[
            "--app",
            "bfs",
            "--mode",
            "morpheus+p2p",
            "--trace-out",
            "/tmp/t.json",
            "--summary-width",
            "32",
            "--scale",
            "512",
            "--seed",
            "7",
            "--faults",
            "seed=9,crash=1",
        ]))
        .expect("valid");
        match cmd {
            Cmd::Run {
                mode,
                trace_out,
                summary_width,
                harness,
                ..
            } => {
                assert_eq!(mode, Mode::MorpheusP2P);
                assert_eq!(trace_out.as_deref(), Some("/tmp/t.json"));
                assert_eq!(summary_width, 32);
                assert_eq!((harness.scale, harness.seed), (512, 7));
                let plan = harness.faults.expect("fault plan parsed");
                assert_eq!(plan.seed, 9);
                assert_eq!(plan.core_crash, 1.0);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn parse_diff() {
        let cmd = parse(&argv(&["--diff", "a.json", "b.json"])).expect("valid");
        match cmd {
            Cmd::Diff { a, b } => {
                assert_eq!((a.as_str(), b.as_str()), ("a.json", "b.json"));
            }
            other => panic!("expected diff, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            vec!["--app"],                                      // missing value
            vec!["--mode", "turbo"],                            // unknown mode
            vec!["--app", "bfs", "--sacle", "64"],              // typo flag
            vec!["--summary-width", "0"],                       // out of range
            vec!["--summary-width", "abc"],                     // malformed
            vec!["--diff", "a.json"],                           // one file
            vec!["--diff", "a.json", "b.json", "--app", "bfs"], // mixed
            vec!["--app", "bfs", "--scale", "0"],               // harness re-check
            vec!["--app", "bfs", "--faults", "bogus"],          // bad fault spec
            vec![],                                             // no app at all
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
    }
}
