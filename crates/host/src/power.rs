//! Wall-power parameters of the modelled platform.
//!
//! The paper measures total system power with a Watts Up meter: 105 W idle;
//! conventional deserialization raises it by ≈ 10.4 W (host CPU working),
//! while the Morpheus path raises it by only ≈ 1.8 W (embedded cores
//! working, host mostly idle) — the source of Fig. 9's 7 % average power
//! and 42 % energy savings.

/// Platform power parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostPowerParams {
    /// Whole-platform idle power, watts.
    pub idle_watts: f64,
    /// Extra watts while a host core runs flat out at maximum frequency.
    pub cpu_active_delta_watts: f64,
    /// Exponent relating CPU active power to frequency (`P ∝ f^k`; ~2–3
    /// with voltage scaling).
    pub cpu_freq_exponent: f64,
    /// Extra watts while the SSD's embedded cores execute a StorageApp.
    pub ssd_cores_delta_watts: f64,
    /// Extra watts while the GPU executes kernels.
    pub gpu_active_delta_watts: f64,
    /// Extra watts per GB/s of sustained memory-bus traffic.
    pub dram_watts_per_gbs: f64,
    /// The frequency at which `cpu_active_delta_watts` was measured.
    pub cpu_nominal_freq_hz: f64,
}

impl HostPowerParams {
    /// The paper's testbed.
    pub fn testbed() -> Self {
        HostPowerParams {
            idle_watts: 105.0,
            cpu_active_delta_watts: 10.4,
            cpu_freq_exponent: 2.0,
            ssd_cores_delta_watts: 1.8,
            gpu_active_delta_watts: 95.0,
            dram_watts_per_gbs: 0.35,
            cpu_nominal_freq_hz: 2.5e9,
        }
    }

    /// CPU active delta at an arbitrary frequency, scaled from the maximum
    /// operating point.
    ///
    /// # Panics
    ///
    /// Panics if `max_freq_hz` is not positive.
    pub fn cpu_delta_at(&self, freq_hz: f64, max_freq_hz: f64) -> f64 {
        assert!(max_freq_hz > 0.0, "max frequency must be positive");
        self.cpu_active_delta_watts * (freq_hz / max_freq_hz).powf(self.cpu_freq_exponent)
    }

    /// CPU active delta at `freq_hz`, scaled from the nominal measurement
    /// point.
    pub fn cpu_delta(&self, freq_hz: f64) -> f64 {
        self.cpu_delta_at(freq_hz, self.cpu_nominal_freq_hz)
    }
}

impl Default for HostPowerParams {
    fn default() -> Self {
        Self::testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_paper_numbers() {
        let p = HostPowerParams::testbed();
        assert_eq!(p.idle_watts, 105.0);
        assert_eq!(p.cpu_active_delta_watts, 10.4);
        assert_eq!(p.ssd_cores_delta_watts, 1.8);
    }

    #[test]
    fn cpu_delta_scales_down_with_frequency() {
        let p = HostPowerParams::testbed();
        let full = p.cpu_delta_at(2.5e9, 2.5e9);
        let slow = p.cpu_delta_at(1.2e9, 2.5e9);
        assert_eq!(full, 10.4);
        assert!(slow < full * 0.3, "1.2GHz delta should be well under 30%");
    }

    #[test]
    fn morpheus_delta_is_much_smaller_than_cpu() {
        let p = HostPowerParams::testbed();
        assert!(p.ssd_cores_delta_watts < p.cpu_active_delta_watts / 4.0);
    }
}
