//! Host-side fault-injection state: the armed dice and per-run counters.
//!
//! [`System::reset_timing`](crate::System::reset_timing) rebuilds this from
//! the installed [`FaultPlan`] at the start of every run, so each run draws
//! identical fault streams and the counters always describe exactly one run.

use morpheus_simcore::{FaultCounters, FaultDice, FaultPlan};

/// The armed fault plane for one run.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    /// The plan every stream was derived from.
    pub plan: FaultPlan,
    /// NVMe command-loss dice (site `nvme-timeout`).
    pub timeout: FaultDice,
    /// Embedded-core stall dice (site `core-stall`).
    pub stall: FaultDice,
    /// Embedded-core crash dice (site `core-crash`).
    pub crash: FaultDice,
    /// What fired and what recovery absorbed, so far this run.
    pub counters: FaultCounters,
    /// Rendered cause chain of the last host fallback, if one happened.
    pub fallback_cause: Option<String>,
    /// Flash `corrected_reads` at run start (media counters survive
    /// `reset_timing`, so per-run numbers are diffs against these).
    pub corrected_snap: u64,
    /// Flash `uncorrectable_reads` at run start.
    pub uncorrectable_snap: u64,
    /// FTL `read_retries` at run start.
    pub retries_snap: u64,
}

impl FaultInjector {
    /// Arms every host-side dice from the plan and snapshots the media
    /// counters the run will diff against.
    pub fn new(
        plan: FaultPlan,
        corrected_snap: u64,
        uncorrectable_snap: u64,
        retries_snap: u64,
    ) -> Self {
        FaultInjector {
            timeout: plan.dice("nvme-timeout", plan.nvme_timeout),
            stall: plan.dice("core-stall", plan.core_stall),
            crash: plan.dice("core-crash", plan.core_crash),
            plan,
            counters: FaultCounters::default(),
            fallback_cause: None,
            corrected_snap,
            uncorrectable_snap,
            retries_snap,
        }
    }
}
