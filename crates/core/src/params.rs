//! All calibration parameters of the modelled platform in one place.
//!
//! Values are chosen once to reproduce the baseline observations of §II
//! (deserialization ≈ 64 % of runtime, CPU-bound against storage speed,
//! IPC ≈ 1.2, overhead-dominated host path) and then held fixed across
//! every experiment. See DESIGN.md §4 for the calibration rationale.

use morpheus_flash::{EccModel, FlashGeometry, FlashTiming};
use morpheus_format::CostModel;
use morpheus_gpu::GpuSpec;
use morpheus_host::{CpuSpec, HostPowerParams, OsParams};
use morpheus_pcie::{LinkConfig, PcieGen};
use morpheus_ssd::SsdConfig;

/// Which device backs the input file in the *conventional* path (Fig. 3
/// compares them; the Morpheus path always uses the NVMe SSD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// The modelled NVMe SSD (default).
    NvmeSsd,
    /// A DRAM-backed file (tmpfs): data moves at memory-bus speed.
    RamDrive,
    /// A magnetic disk streaming sequentially.
    Hdd,
}

/// A multiprogrammed co-runner sharing the host (§II/§III: the Morpheus
/// model "mitigates system overheads in multiprogrammed environments").
///
/// The co-runner occupies CPU cores outright, consumes a share of the
/// memory-bus bandwidth, and pressures the page cache so the foreground
/// application's conventional read path preempts and faults more often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoRunner {
    /// Host cores the co-runner keeps busy.
    pub cores_taken: u32,
    /// Fraction of memory-bus bandwidth it consumes (0..1).
    pub membus_share: f64,
    /// Multiplier on context switches per blocking read (scheduler
    /// pressure) and on page faults per MB (cache pressure).
    pub pressure: f64,
}

impl CoRunner {
    /// A moderate co-runner: one core, 25 % of the bus, 2× OS pressure.
    pub fn moderate() -> Self {
        CoRunner {
            cores_taken: 1,
            membus_share: 0.25,
            pressure: 2.0,
        }
    }

    /// A heavy co-runner: two cores, half the bus, 4× OS pressure.
    pub fn heavy() -> Self {
        CoRunner {
            cores_taken: 2,
            membus_share: 0.5,
            pressure: 4.0,
        }
    }
}

/// Full platform configuration.
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// Host CPU specification.
    pub cpu: CpuSpec,
    /// OS overhead parameters.
    pub os: OsParams,
    /// Wall-power parameters.
    pub power: HostPowerParams,
    /// CPU-memory bus bandwidth, GB/s.
    pub membus_gbs: f64,
    /// Host DRAM capacity, bytes.
    pub host_dram_bytes: u64,
    /// SSD controller configuration.
    pub ssd: SsdConfig,
    /// Flash array shape.
    pub flash_geometry: FlashGeometry,
    /// Flash latencies.
    pub flash_timing: FlashTiming,
    /// Flash bit-error / wear injection model (perfect by default).
    pub flash_ecc: EccModel,
    /// Seed for the error-injection generator.
    pub flash_seed: u64,
    /// Parse cost table for the host CPU.
    pub host_cost: CostModel,
    /// Parse cost table for the embedded cores.
    pub device_cost: CostModel,
    /// PCIe link of the SSD.
    pub ssd_link: LinkConfig,
    /// PCIe link of the GPU.
    pub gpu_link: LinkConfig,
    /// Root-complex link.
    pub root_link: LinkConfig,
    /// GPU specification.
    pub gpu: GpuSpec,
    /// Conventional-path read granularity (page-cache readahead window
    /// drives the I/O pipeline).
    pub conventional_chunk_bytes: u64,
    /// Morpheus MREAD chunk size (bounded by `MAX_IO_BLOCKS`).
    pub mread_chunk_bytes: u64,
    /// Storage backing the conventional path.
    pub storage: StorageKind,
    /// HDD sequential bandwidth, MB/s (Fig. 3's disk is 158 MB/s).
    pub hdd_mbs: f64,
    /// HDD initial seek.
    pub hdd_seek_ms: f64,
    /// Optional multiprogrammed co-runner.
    pub corunner: Option<CoRunner>,
}

impl SystemParams {
    /// The paper's testbed configuration.
    pub fn paper_testbed() -> Self {
        SystemParams {
            cpu: CpuSpec::xeon_quad(),
            os: OsParams::default(),
            power: HostPowerParams::testbed(),
            membus_gbs: 12.8,
            host_dram_bytes: 16 << 30,
            ssd: SsdConfig::default(),
            flash_geometry: FlashGeometry::workload(),
            flash_timing: FlashTiming::default(),
            flash_ecc: EccModel::perfect(),
            flash_seed: 0,
            host_cost: CostModel::host_cpu(),
            device_cost: CostModel::embedded_core(),
            ssd_link: LinkConfig::new(PcieGen::Gen3, 4),
            gpu_link: LinkConfig::new(PcieGen::Gen2, 16), // the K20's interface
            root_link: LinkConfig::new(PcieGen::Gen3, 16),
            gpu: GpuSpec::k20(),
            conventional_chunk_bytes: 1 << 20,
            mread_chunk_bytes: 8 << 20,
            storage: StorageKind::NvmeSsd,
            hdd_mbs: 158.0,
            hdd_seek_ms: 8.0,
            corunner: None,
        }
    }

    /// Same testbed with the host clocked down to 1.2 GHz (the paper's
    /// "slower server" sensitivity study).
    pub fn slow_server() -> Self {
        let mut p = Self::paper_testbed();
        p.cpu.max_freq_hz = 1.2e9;
        p
    }

    /// The testbed sharing its host with a co-runner.
    pub fn multiprogrammed(corunner: CoRunner) -> Self {
        let mut p = Self::paper_testbed();
        p.corunner = Some(corunner);
        p
    }

    /// Host cores left for the foreground application.
    pub fn effective_cores(&self) -> u32 {
        let taken = self.corunner.map(|c| c.cores_taken).unwrap_or(0);
        (self.cpu.cores.saturating_sub(taken)).max(1)
    }

    /// Memory-bus bandwidth left for the foreground application, GB/s.
    pub fn effective_membus_gbs(&self) -> f64 {
        let share = self.corunner.map(|c| c.membus_share).unwrap_or(0.0);
        self.membus_gbs * (1.0 - share.clamp(0.0, 0.95))
    }

    /// OS parameters under co-runner pressure.
    pub fn effective_os(&self) -> morpheus_host::OsParams {
        let mut os = self.os;
        if let Some(c) = self.corunner {
            os.switches_per_read *= c.pressure;
            os.faults_per_mb *= c.pressure;
        }
        os
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_is_valid() {
        let p = SystemParams::paper_testbed();
        p.ssd.validate();
        assert!(p.mread_chunk_bytes <= morpheus_nvme::MAX_IO_BLOCKS * morpheus_nvme::LBA_BYTES);
        assert!(p.conventional_chunk_bytes > 0);
    }

    #[test]
    fn slow_server_runs_at_1_2_ghz() {
        let p = SystemParams::slow_server();
        assert_eq!(p.cpu.max_freq_hz, 1.2e9);
    }
}

#[cfg(test)]
mod corunner_tests {
    use super::*;

    #[test]
    fn corunner_steals_resources() {
        let p = SystemParams::multiprogrammed(CoRunner::heavy());
        assert_eq!(p.effective_cores(), 2);
        assert!(p.effective_membus_gbs() < p.membus_gbs);
        assert!(p.effective_os().switches_per_read > p.os.switches_per_read);
        assert!(p.effective_os().faults_per_mb > p.os.faults_per_mb);
    }

    #[test]
    fn idle_host_keeps_everything() {
        let p = SystemParams::paper_testbed();
        assert_eq!(p.effective_cores(), p.cpu.cores);
        assert_eq!(p.effective_membus_gbs(), p.membus_gbs);
        assert_eq!(p.effective_os(), p.os);
    }

    #[test]
    fn at_least_one_core_always_remains() {
        let mut p = SystemParams::multiprogrammed(CoRunner {
            cores_taken: 99,
            membus_share: 0.999,
            pressure: 1.0,
        });
        assert_eq!(p.effective_cores(), 1);
        // Bus share is clamped below 100%.
        assert!(p.effective_membus_gbs() > 0.0);
        p.corunner = Some(CoRunner::moderate());
        assert_eq!(p.effective_cores(), 3);
    }
}
