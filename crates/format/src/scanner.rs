//! Byte-exact text scanning and numeric conversion.

use crate::{ParseError, ParseErrorKind, ParseWork};

/// True for the separator bytes the formats use (space, tab, newline,
/// carriage return, comma).
#[inline]
pub(crate) fn is_separator(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | b',')
}

/// SWAR (SIMD-within-a-register) helpers: classify and fold 8-byte chunks
/// of the input at once, leaving partial chunks and everything after the
/// first match to the scalar tail. All masks put their verdict in the high
/// bit of each byte; positions are read LE, so `trailing_zeros() / 8` is
/// the index of the first flagged byte.
mod swar {
    /// 0x01 splat.
    const LO: u64 = 0x0101_0101_0101_0101;
    /// 0x80 splat.
    const HI: u64 = 0x8080_8080_8080_8080;
    /// b'0' splat: eight ASCII zeros.
    pub(super) const ASCII_ZEROS: u64 = 0x3030_3030_3030_3030;

    #[inline]
    pub(super) fn load(chunk: &[u8]) -> u64 {
        u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
    }

    /// High bit set in every byte that is not an ASCII digit. Lanes after
    /// the first flagged byte may be misclassified (a wild byte >= 0x8A
    /// carries into the next lane), so callers must only trust lanes up to
    /// and including the first set bit — exactly what a first-non-digit
    /// search needs.
    #[inline]
    pub(super) fn non_digit_mask(v: u64) -> u64 {
        let x = v ^ ASCII_ZEROS;
        let y = x.wrapping_add(LO * 0x76);
        (x | y) & HI
    }

    /// Number of leading (lowest-address) ASCII-digit bytes in the chunk,
    /// 0..=8.
    #[inline]
    pub(super) fn leading_digits(v: u64) -> usize {
        (non_digit_mask(v).trailing_zeros() / 8) as usize
    }

    /// Folds a chunk of exactly eight ASCII digits (first digit in the
    /// lowest byte) to its decimal value, 0..=99_999_999. Three
    /// multiply-shift rounds combine neighbours at widening strides.
    #[inline]
    pub(super) fn fold8(v: u64) -> u64 {
        let v = v & (LO * 0x0F);
        let v = v.wrapping_mul((10 << 8) + 1) >> 8;
        let v = (v & 0x00FF_00FF_00FF_00FF).wrapping_mul((100 << 16) + 1) >> 16;
        (v & 0x0000_FFFF_0000_FFFF).wrapping_mul((10_000 << 32) + 1) >> 32
    }

    /// Folds the first `nd` (1..=7) digit bytes of `v`: the run is shifted
    /// to the top lanes and the vacated low lanes refilled with ASCII
    /// zeros, which become leading zeros of the 8-digit fold.
    #[inline]
    pub(super) fn fold_partial(v: u64, nd: usize) -> u64 {
        debug_assert!((1..8).contains(&nd));
        fold8((v << ((8 - nd) * 8)) | (ASCII_ZEROS >> (nd * 8)))
    }

    /// 10^n for n in 0..=8.
    pub(super) const POW10_U64: [u64; 9] = [
        1,
        10,
        100,
        1_000,
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        100_000_000,
    ];
}

/// Exact positive powers of ten. Every entry equals the result of the
/// corresponding run of `*= 10.0` steps from 1.0 (exact through 10^22, the
/// largest power of ten representable exactly in an f64).
const POW10: [f64; 23] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
    1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

/// The fraction scale after `n` fractional digits: 10^n, continuing with
/// the same progressive rounding the old per-digit `*= 10.0` chain had
/// once past the exact range.
#[inline]
fn frac_scale_for(n: usize) -> f64 {
    if n < POW10.len() {
        return POW10[n];
    }
    let mut s = POW10[POW10.len() - 1];
    for _ in POW10.len() - 1..n {
        s *= 10.0;
    }
    s
}

/// Mantissa accumulator for [`TextScanner::parse_f64`]: folds digits in the
/// integer domain while exactness is guaranteed (up to 15 folded digits
/// stays below 10^15 < 2^53), then spills to the float shift-add the
/// scalar path always used. Bit-identical results, but the common short
/// literal never touches the dependent f64 multiply-add chain.
struct Mantissa {
    acc: u64,
    folded: u32,
    spill: f64,
    spilled: bool,
}

impl Mantissa {
    #[inline]
    fn new() -> Self {
        Mantissa {
            acc: 0,
            folded: 0,
            spill: 0.0,
            spilled: false,
        }
    }

    #[inline]
    fn push(&mut self, d: u8) {
        if self.spilled {
            self.spill = self.spill * 10.0 + d as f64;
        } else if self.folded < 15 {
            self.acc = self.acc * 10 + d as u64;
            self.folded += 1;
        } else {
            // `acc` < 10^15 < 2^53, so the conversion is exact and this
            // rounds exactly like the pure-f64 sequence would have.
            self.spill = self.acc as f64 * 10.0 + d as f64;
            self.spilled = true;
        }
    }

    /// True when a `k`-digit SWAR fold is equivalent to `k` scalar pushes:
    /// every one of those pushes would have taken the exact-integer branch.
    #[inline]
    fn can_fold(&self, k: u32) -> bool {
        !self.spilled && self.folded + k <= 15
    }

    /// Folds a `k`-digit run whose decimal value is `run` in one step.
    /// Callers must check [`can_fold`](Mantissa::can_fold) first.
    #[inline]
    fn fold_run(&mut self, run: u64, k: u32) {
        debug_assert!(self.can_fold(k));
        self.acc = self.acc * swar::POW10_U64[k as usize] + run;
        self.folded += k;
    }

    #[inline]
    fn value(&self) -> f64 {
        if self.spilled {
            self.spill
        } else {
            self.acc as f64
        }
    }
}

/// Advances past the digit run starting at `buf[i]`, feeding each digit to
/// `m`, and returns the position after the run. Whole 8-byte chunks fold
/// via SWAR while the mantissa can absorb them exactly; everything else —
/// the partial tail, and digits past the mantissa's exact window — falls
/// back to the scalar per-digit push, keeping results bit-identical to the
/// pure scalar walk.
#[inline]
fn scan_digit_run(buf: &[u8], mut i: usize, m: &mut Mantissa) -> usize {
    // Scalar walk over the first chunk's worth of digits: most mantissa
    // runs are shorter than 8 digits and the per-digit loop is cheapest
    // for them. Only a run that fills all 8 is worth chunk classification.
    let quick = buf.len().min(i + 8);
    while i < quick {
        let d = buf[i].wrapping_sub(b'0');
        if d >= 10 {
            return i;
        }
        m.push(d);
        i += 1;
    }
    while i + 8 <= buf.len() {
        let w = swar::load(&buf[i..i + 8]);
        let nd = swar::leading_digits(w);
        if nd == 8 && m.can_fold(8) {
            m.fold_run(swar::fold8(w), 8);
            i += 8;
            continue;
        }
        if nd > 0 && nd < 8 && m.can_fold(nd as u32) {
            m.fold_run(swar::fold_partial(w, nd), nd as u32);
            i += nd;
        }
        break;
    }
    while i < buf.len() {
        let d = buf[i].wrapping_sub(b'0');
        if d >= 10 {
            break;
        }
        m.push(d);
        i += 1;
    }
    i
}

/// A scanner over a byte buffer that converts ASCII tokens to binary values
/// while counting the work performed.
///
/// # Example
///
/// ```
/// use morpheus_format::TextScanner;
///
/// let mut s = TextScanner::new(b"12 -3 4.5\n");
/// assert_eq!(s.parse_i64().unwrap(), 12);
/// assert_eq!(s.parse_i64().unwrap(), -3);
/// assert!((s.parse_f64().unwrap() - 4.5).abs() < 1e-12);
/// assert!(s.at_end());
/// assert_eq!(s.work().int_tokens, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TextScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Offset of `buf[0]` within the larger stream (for error reporting in
    /// streaming parses).
    base_offset: usize,
    work: ParseWork,
}

impl<'a> TextScanner<'a> {
    /// Creates a scanner over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self::with_base_offset(buf, 0)
    }

    /// Creates a scanner whose error offsets are shifted by `base_offset`.
    pub fn with_base_offset(buf: &'a [u8], base_offset: usize) -> Self {
        TextScanner {
            buf,
            pos: 0,
            base_offset,
            work: ParseWork::default(),
        }
    }

    /// Current position within the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Work performed so far.
    pub fn work(&self) -> ParseWork {
        self.work
    }

    /// Skips separator bytes. The common gap between tokens is one or two
    /// bytes, so the first few are walked scalar; only a longer run (blank
    /// lines, padded columns) switches to 8-byte chunk classification,
    /// with a scalar tail for the last partial chunk.
    pub fn skip_separators(&mut self) {
        let buf = self.buf;
        let start = self.pos;
        let mut i = start;
        while i < buf.len() && is_separator(buf[i]) {
            i += 1;
        }
        self.pos = i;
        self.work.bytes_scanned += (i - start) as u64;
    }

    /// True once only separators remain.
    pub fn at_end(&mut self) -> bool {
        self.skip_separators();
        self.pos == self.buf.len()
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.base_offset + self.pos, kind)
    }

    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    /// Scans the decimal magnitude at the cursor in a single fused pass and
    /// advances past it, returning the value and digit count.
    ///
    /// Fast path: the first 19 digits cannot overflow `u64` (19 nines
    /// < 2^64), so they accumulate without per-digit overflow checks —
    /// folded eight digits at a time via SWAR while a whole chunk fits in
    /// both the input and the 19-digit budget, then digit by digit. Base-10
    /// folding in `u64` is exact, so the chunked accumulation produces the
    /// same value the per-digit walk did. Only a 20th digit switches to the
    /// checked continuation, so overflow is still reported at the exact
    /// offending digit.
    #[inline]
    fn scan_magnitude(&mut self) -> Result<(u64, usize), ParseError> {
        let start = self.pos;
        let rest = &self.buf[start..];
        let limit = rest.len().min(19);
        let mut v: u64 = 0;
        let mut n = 0usize;
        // Scalar walk first: almost every token is shorter than a chunk,
        // and for those the per-digit loop beats any whole-chunk classify.
        let quick = limit.min(8);
        while n < quick {
            let d = rest[n].wrapping_sub(b'0');
            if d >= 10 {
                break;
            }
            v = v * 10 + d as u64;
            n += 1;
        }
        // A run that filled the first 8 digits is a long literal: fold the
        // remainder in SWAR chunks (whole and partial) up to the 19-digit
        // unchecked budget, then let the scalar loop mop up the tail.
        if n == 8 {
            while n + 8 <= limit {
                let w = swar::load(&rest[n..n + 8]);
                let nd = swar::leading_digits(w);
                if nd == 8 {
                    v = v * swar::POW10_U64[8] + swar::fold8(w);
                    n += 8;
                    continue;
                }
                if nd > 0 {
                    v = v * swar::POW10_U64[nd] + swar::fold_partial(w, nd);
                    n += nd;
                }
                break;
            }
        }
        while n < limit {
            let d = rest[n].wrapping_sub(b'0');
            if d >= 10 {
                break;
            }
            v = v * 10 + d as u64;
            n += 1;
        }
        if n == 19 {
            while n < rest.len() {
                let d = rest[n].wrapping_sub(b'0');
                if d >= 10 {
                    break;
                }
                v = v
                    .checked_mul(10)
                    .and_then(|m| m.checked_add(d as u64))
                    .ok_or_else(|| {
                        ParseError::new(self.base_offset + start + n, ParseErrorKind::Overflow)
                    })?;
                n += 1;
            }
        }
        self.pos = start + n;
        if n == 0 {
            return Err(match self.peek() {
                Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                None => self.err(ParseErrorKind::UnexpectedEof),
            });
        }
        if let Some(b) = self.peek() {
            if !is_separator(b) {
                return Err(self.err(ParseErrorKind::UnexpectedChar(b)));
            }
        }
        Ok((v, n))
    }

    /// Parses a (possibly signed) decimal integer token.
    ///
    /// # Errors
    ///
    /// Fails on a non-numeric byte, on overflow, or at end of input.
    pub fn parse_i64(&mut self) -> Result<i64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let mut neg = false;
        match self.peek() {
            Some(b'-') => {
                neg = true;
                self.pos += 1;
            }
            Some(b'+') => {
                self.pos += 1;
            }
            _ => {}
        }
        let (magnitude, ndigits) = self.scan_magnitude()?;
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.int_tokens += 1;
        self.work.int_digits += ndigits as u64;
        let limit = if neg { 1u64 << 63 } else { (1u64 << 63) - 1 };
        if magnitude > limit {
            return Err(self.err(ParseErrorKind::Overflow));
        }
        Ok(if neg {
            (magnitude as i64).wrapping_neg()
        } else {
            magnitude as i64
        })
    }

    /// Parses an unsigned decimal integer token.
    ///
    /// # Errors
    ///
    /// Fails on a sign or non-numeric byte, on overflow, or at end of input.
    pub fn parse_u64(&mut self) -> Result<u64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let (value, ndigits) = self.scan_magnitude()?;
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.int_tokens += 1;
        self.work.int_digits += ndigits as u64;
        Ok(value)
    }

    /// Parses a decimal floating-point token (`-12.5`, `3.0e-4`, `7`).
    ///
    /// # Errors
    ///
    /// Fails on a malformed literal or at end of input.
    pub fn parse_f64(&mut self) -> Result<f64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let mut neg = false;
        match self.peek() {
            Some(b'-') => {
                neg = true;
                self.pos += 1;
            }
            Some(b'+') => {
                self.pos += 1;
            }
            _ => {}
        }
        let buf = self.buf;
        let mut i = self.pos;
        let mut m = Mantissa::new();
        let int_start = i;
        i = scan_digit_run(buf, i, &mut m);
        let mut digits = (i - int_start) as u64;
        let mut frac_scale = 1.0f64;
        if buf.get(i) == Some(&b'.') {
            i += 1;
            let frac_start = i;
            i = scan_digit_run(buf, i, &mut m);
            frac_scale = frac_scale_for(i - frac_start);
            digits += (i - frac_start) as u64;
        }
        self.pos = i;
        if digits == 0 {
            return Err(match self.peek() {
                Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                None => self.err(ParseErrorKind::UnexpectedEof),
            });
        }
        let mut exp: i32 = 0;
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            let mut exp_neg = false;
            match self.peek() {
                Some(b'-') => {
                    exp_neg = true;
                    self.pos += 1;
                }
                Some(b'+') => {
                    self.pos += 1;
                }
                _ => {}
            }
            let exp_start = self.pos;
            let mut j = self.pos;
            while j < buf.len() {
                let d = buf[j].wrapping_sub(b'0');
                if d >= 10 {
                    break;
                }
                exp = exp.saturating_mul(10).saturating_add(d as i32);
                j += 1;
            }
            if j == exp_start {
                return Err(match self.peek() {
                    Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                    None => self.err(ParseErrorKind::UnexpectedEof),
                });
            }
            digits += (j - exp_start) as u64;
            self.pos = j;
            if exp_neg {
                exp = -exp;
            }
        }
        // Reject garbage stuck to the token.
        if let Some(b) = self.peek() {
            if !is_separator(b) {
                return Err(self.err(ParseErrorKind::UnexpectedChar(b)));
            }
        }
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.float_tokens += 1;
        self.work.float_digits += digits;
        let mut value = m.value() / frac_scale * 10f64.powi(exp);
        if neg {
            value = -value;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_signed_integers() {
        let mut s = TextScanner::new(b"  42\t-17,+8\n");
        assert_eq!(s.parse_i64().unwrap(), 42);
        assert_eq!(s.parse_i64().unwrap(), -17);
        assert_eq!(s.parse_i64().unwrap(), 8);
        assert!(s.at_end());
    }

    #[test]
    fn parses_u64_and_rejects_sign() {
        let mut s = TextScanner::new(b"18446744073709551615");
        assert_eq!(s.parse_u64().unwrap(), u64::MAX);
        let mut s = TextScanner::new(b"-1");
        assert!(matches!(
            s.parse_u64().unwrap_err().kind,
            ParseErrorKind::UnexpectedChar(b'-')
        ));
    }

    #[test]
    fn parses_extreme_i64() {
        let mut s = TextScanner::new(b"-9223372036854775808 9223372036854775807");
        assert_eq!(s.parse_i64().unwrap(), i64::MIN);
        assert_eq!(s.parse_i64().unwrap(), i64::MAX);
    }

    #[test]
    fn integer_overflow_detected() {
        let mut s = TextScanner::new(b"9223372036854775808");
        assert_eq!(s.parse_i64().unwrap_err().kind, ParseErrorKind::Overflow);
        let mut s = TextScanner::new(b"99999999999999999999999");
        assert_eq!(s.parse_u64().unwrap_err().kind, ParseErrorKind::Overflow);
    }

    #[test]
    fn fast_path_boundary_is_exact() {
        // 19 digits: longest run the unchecked fast path may take.
        let mut s = TextScanner::new(b"9999999999999999999");
        assert_eq!(s.parse_u64().unwrap(), 9_999_999_999_999_999_999);
        // 20 digits: checked path; u64::MAX still parses...
        let mut s = TextScanner::new(b"18446744073709551615");
        assert_eq!(s.parse_u64().unwrap(), u64::MAX);
        // ...and u64::MAX + 1 reports overflow at the offending digit.
        let mut s = TextScanner::new(b"18446744073709551616");
        let e = s.parse_u64().unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Overflow);
        assert_eq!(e.offset, 19);
    }

    #[test]
    fn parses_floats() {
        let cases: [(&[u8], f64); 7] = [
            (b"0", 0.0),
            (b"3.5", 3.5),
            (b"-2.25", -2.25),
            (b"1e3", 1000.0),
            (b"2.5e-2", 0.025),
            (b"+4.0E+1", 40.0),
            (b"123456.789", 123456.789),
        ];
        for (text, want) in cases {
            let mut s = TextScanner::new(text);
            let got = s.parse_f64().unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-12,
                "{:?} -> {got}, want {want}",
                std::str::from_utf8(text).unwrap()
            );
        }
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(TextScanner::new(b"12x").parse_i64().is_err());
        assert!(TextScanner::new(b"abc").parse_f64().is_err());
        assert!(TextScanner::new(b".").parse_f64().is_err());
        assert!(TextScanner::new(b"1e").parse_f64().is_err());
        assert!(TextScanner::new(b"").parse_i64().is_err());
        assert!(TextScanner::new(b"-").parse_i64().is_err());
    }

    #[test]
    fn error_offsets_account_for_base() {
        let mut s = TextScanner::with_base_offset(b"zz", 100);
        assert_eq!(s.parse_i64().unwrap_err().offset, 100);
    }

    #[test]
    fn swar_fold8_matches_scalar_for_all_pair_patterns() {
        for a in [0u64, 1, 9, 10, 99, 12_345_678, 99_999_999, 90_000_009] {
            let text = format!("{a:08}");
            assert_eq!(swar::fold8(swar::load(text.as_bytes())), a, "{text}");
        }
    }

    #[test]
    fn chunked_scanner_matches_reference_on_all_small_lengths() {
        // Every prefix length 0..=33 of a digit/separator cycle: covers the
        // empty input, sub-chunk inputs, exact one/two/four-chunk inputs,
        // and trailing partial chunks on either side of the 8/16/32-byte
        // boundaries. Truncation only ever shortens a token, so every
        // prefix stays parseable and std's parser is the reference.
        let pattern: &[u8] = b"12, 34\t5\n9876543210 0 77777 808";
        for len in 0..=33 {
            let input: Vec<u8> = pattern.iter().cycle().take(len).copied().collect();
            let expect: Vec<i64> = input
                .split(|b| is_separator(*b))
                .filter(|t| !t.is_empty())
                .map(|t| std::str::from_utf8(t).unwrap().parse::<i64>().unwrap())
                .collect();
            let mut s = TextScanner::new(&input);
            let mut got = Vec::new();
            while !s.at_end() {
                got.push(s.parse_i64().unwrap());
            }
            assert_eq!(got, expect, "len {len}");
            assert_eq!(s.work().bytes_scanned, len as u64, "len {len}");
        }
    }

    #[test]
    fn chunked_float_scan_matches_reference_on_all_small_lengths() {
        let pattern: &[u8] = b"1.5 22.25,333.125\t4444.0625\n9.0 ";
        for len in 0..=33 {
            let input: Vec<u8> = pattern.iter().cycle().take(len).copied().collect();
            // Drop a trailing lone '.' token truncation would create.
            let input: Vec<u8> = if input.last() == Some(&b'.') {
                input[..len - 1].to_vec()
            } else {
                input
            };
            let expect: Vec<f64> = input
                .split(|b| is_separator(*b))
                .filter(|t| !t.is_empty())
                .map(|t| std::str::from_utf8(t).unwrap().parse::<f64>().unwrap())
                .collect();
            let mut s = TextScanner::new(&input);
            let mut got = Vec::new();
            while !s.at_end() {
                got.push(s.parse_f64().unwrap());
            }
            // Dyadic fractions: both parsers are exact, so == is fair.
            assert_eq!(got, expect, "len {len}");
        }
    }

    #[test]
    fn non_ascii_bytes_at_chunk_boundaries_error_at_exact_offset() {
        // 0xC3/0x80/0xFF at every position 0..=24: 0xFF in particular
        // exercises the SWAR carry case (a wild byte >= 0x8A corrupts the
        // *next* lane's classification, which must never be trusted).
        for wild in [0xC3u8, 0x80, 0xFF] {
            for pos in 0..=24 {
                // Zero digits: runs past 19 digits stay below the overflow
                // path, so the only possible error is the wild byte itself.
                let mut input = vec![b'0'; 25];
                input[pos] = wild;
                let mut s = TextScanner::new(&input);
                let e = s.parse_u64().unwrap_err();
                assert_eq!(e.kind, ParseErrorKind::UnexpectedChar(wild), "pos {pos}");
                assert_eq!(e.offset, pos, "wild {wild:#x} at {pos}");
            }
        }
    }

    #[test]
    fn separator_skip_handles_long_runs_and_boundary_tails() {
        for lead in 0..=33usize {
            let mut input = Vec::new();
            for k in 0..lead {
                input.push(b" \t\n\r,"[k % 5]);
            }
            input.extend_from_slice(b"41");
            let mut s = TextScanner::new(&input);
            assert_eq!(s.parse_i64().unwrap(), 41, "lead {lead}");
            assert_eq!(s.pos(), lead + 2);
        }
        // All-separator input of every small length ends cleanly.
        for len in 0..=33usize {
            let input = vec![b' '; len];
            let mut s = TextScanner::new(&input);
            assert!(s.at_end());
            assert_eq!(s.work().bytes_scanned, len as u64);
        }
    }

    #[test]
    fn work_counts_every_byte_once() {
        let text = b" 12 34.5\t-6\n";
        let mut s = TextScanner::new(text);
        s.parse_i64().unwrap();
        s.parse_f64().unwrap();
        s.parse_i64().unwrap();
        assert!(s.at_end());
        let w = s.work();
        assert_eq!(w.bytes_scanned, text.len() as u64);
        assert_eq!(w.int_tokens, 2);
        assert_eq!(w.float_tokens, 1);
        assert_eq!(w.int_digits, 3);
        assert_eq!(w.float_digits, 3);
    }
}
