//! The `trace` binary's CLI contract: strict flag grammar (exit 2 on any
//! unknown flag or malformed value), valid Chrome-trace JSON covering all
//! six simulated layers, and byte-identical traces regardless of `--jobs`.

use std::path::PathBuf;
use std::process::{Command, Output};

use morpheus_simcore::{TraceLayer, TraceLog};

fn trace_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace"))
        .args(args)
        .env_remove("MORPHEUS_JOBS")
        .output()
        .expect("launch trace binary")
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("morpheus-trace-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn bad_flags_exit_two_with_usage() {
    for bad in [
        vec!["--sacle", "64"],
        vec!["--app", "bfs", "--mode", "turbo"],
        vec!["--app", "bfs", "--summary-width", "abc"],
        vec!["--diff", "only-one.json"],
        vec!["--app"],
        vec![],
    ] {
        let out = trace_bin(&bad);
        assert_eq!(
            out.status.code(),
            Some(2),
            "trace {bad:?} should exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "trace {bad:?} stderr: {stderr}");
    }
}

#[test]
fn unknown_app_and_non_cuda_p2p_exit_two() {
    let out = trace_bin(&["--app", "nosuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown app"));

    // pagerank is MPI; P2P is a usage error, not a crash.
    let out = trace_bin(&["--app", "pagerank", "--mode", "morpheus+p2p"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("CUDA"));
}

#[test]
fn p2p_trace_covers_all_six_layers() {
    let path = tmp_path("p2p.json");
    let out = trace_bin(&[
        "--app",
        "bfs",
        "--mode",
        "morpheus+p2p",
        "--scale",
        "8192",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let log = TraceLog::from_chrome_json(&text).expect("exported JSON re-imports");
    assert!(!log.is_empty(), "trace is empty");
    assert_eq!(
        log.layers_present(),
        TraceLayer::ALL.to_vec(),
        "a morpheus+p2p run must touch every layer"
    );
}

#[test]
fn diff_of_identical_traces_is_all_zero() {
    let path = tmp_path("diff-self.json");
    let out = trace_bin(&[
        "--app",
        "sort",
        "--scale",
        "8192",
        "--trace-out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = trace_bin(&["--diff", path.to_str().unwrap(), path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TOTAL"), "diff table missing: {stdout}");
    assert!(
        !stdout.contains("new") && !stdout.contains("-100.0%"),
        "self-diff shows churn: {stdout}"
    );
}

#[test]
fn traces_are_byte_identical_across_jobs() {
    // One app per mode; `--jobs` may only change wall-clock time, never a
    // single simulated event.
    for (app, mode) in [
        ("sort", "conventional"),
        ("sort", "morpheus"),
        ("bfs", "morpheus+p2p"),
    ] {
        let p1 = tmp_path(&format!("{app}-{mode}-j1.json"));
        let p4 = tmp_path(&format!("{app}-{mode}-j4.json"));
        let mut outputs = Vec::new();
        for (jobs, path) in [("1", &p1), ("4", &p4)] {
            let out = trace_bin(&[
                "--app",
                app,
                "--mode",
                mode,
                "--scale",
                "8192",
                "--jobs",
                jobs,
                "--trace-out",
                path.to_str().unwrap(),
            ]);
            assert!(
                out.status.success(),
                "{app}/{mode} --jobs {jobs} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            // Drop the final "wrote ... to <path>" line: the paths differ
            // by construction, everything simulated must not.
            let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
            let filtered: String = stdout
                .lines()
                .filter(|l| !l.starts_with("wrote "))
                .collect::<Vec<_>>()
                .join("\n");
            outputs.push(filtered);
        }
        let (t1, t4) = (
            std::fs::read(&p1).expect("jobs=1 trace"),
            std::fs::read(&p4).expect("jobs=4 trace"),
        );
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p4).ok();
        assert!(!t1.is_empty(), "{app}/{mode}: empty trace");
        assert_eq!(t1, t4, "{app}/{mode}: trace differs across --jobs");
        assert_eq!(
            outputs[0], outputs[1],
            "{app}/{mode}: stdout differs across --jobs"
        );
    }
}
