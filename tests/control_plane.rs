//! Control-plane invariants at integration scope: illegal lifecycle
//! edges are rejected wholesale, a rolling firmware update loses zero
//! requests while cycling every device, the whole control-plane output
//! is byte-identical across reruns and `--jobs` fan-outs, and a
//! mid-run kill with healing ends the run healthy with the device back
//! in service.

use morpheus::{
    AppSpec, DeviceKill, DeviceState, Fleet, FleetConfig, HealPolicy, Health, Lifecycle, Mode,
    PlacementPolicy, RollingUpdate, ServeConfig, SystemParams,
};
use morpheus_bench::run_parallel;
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{SimDuration, SloSpec, SplitMix64, TelemetryConfig};
use proptest::prelude::*;

fn edge_text(records: u32, salt: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(salt);
    let mut w = TextWriter::new();
    for _ in 0..records {
        w.write_u64(rng.next_below(100_000));
        w.sep();
        w.write_u64(rng.next_below(100_000));
        w.newline();
    }
    w.into_bytes()
}

/// Stages `napps` tenants on a fresh fleet of the given shape.
fn build_fleet(cfg: FleetConfig, napps: usize, records: u32) -> (Fleet, Vec<AppSpec>) {
    let mut fleet = Fleet::new(SystemParams::paper_testbed(), cfg);
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let mut specs = Vec::new();
    for i in 0..napps {
        let file = format!("svc{i}.txt");
        fleet
            .create_input_file(&file, &edge_text(records, i as u64))
            .unwrap();
        specs.push(AppSpec::cpu_app(
            &format!("svc{i}"),
            &file,
            schema.clone(),
            1,
            50.0,
        ));
    }
    (fleet, specs)
}

fn serve_cfg(rps: f64, seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(rps, 0.03);
    cfg.mode = Mode::Morpheus;
    cfg.seed = seed;
    cfg
}

/// A 4-device round-robin fleet with a rolling update starting 2 ms in.
fn rolling_shape() -> FleetConfig {
    let mut c = FleetConfig::new(4);
    c.placement = PlacementPolicy::RoundRobin;
    c.seed = 7;
    c.control.rolling = Some(RollingUpdate::starting_at(0.002));
    c
}

/// Renders everything an operator would diff: placement, per-device
/// rows, the control block, and the aggregate.
fn render(cfg: FleetConfig, napps: usize, rps: f64, seed: u64) -> String {
    let (mut fleet, specs) = build_fleet(cfg, napps, 300);
    let rep = fleet.serve(&specs, &serve_cfg(rps, seed)).unwrap();
    format!("placement={:?}\n{rep}", rep.placement)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every (from, to) pair outside the lifecycle table is rejected
    /// with the typed error and leaves the machine's state unchanged.
    #[test]
    fn illegal_transitions_are_rejected_and_leave_state_unchanged(
        from_idx in 0usize..6,
        to_idx in 0usize..6,
        device in 0usize..64,
    ) {
        let from = DeviceState::ALL[from_idx];
        let to = DeviceState::ALL[to_idx];
        // Drive a fresh machine into `from` through legal edges only.
        let mut m = Lifecycle::new(device);
        let path: &[DeviceState] = match from {
            DeviceState::Provisioning => &[],
            DeviceState::InService => &[DeviceState::InService],
            DeviceState::Draining => &[DeviceState::InService, DeviceState::Draining],
            DeviceState::Updating => &[
                DeviceState::InService,
                DeviceState::Draining,
                DeviceState::Updating,
            ],
            DeviceState::Rebooting => &[DeviceState::Failed, DeviceState::Rebooting],
            DeviceState::Failed => &[DeviceState::Failed],
        };
        for &s in path {
            m.transition(s).unwrap();
        }
        prop_assert_eq!(m.state(), from);
        match m.transition(to) {
            Ok(()) => prop_assert!(Lifecycle::legal(from, to)),
            Err(e) => {
                prop_assert!(!Lifecycle::legal(from, to));
                prop_assert_eq!(e.device, device);
                prop_assert_eq!(e.from, from);
                prop_assert_eq!(e.to, to);
                prop_assert_eq!(m.state(), from, "failed edge must be a no-op");
            }
        }
    }
}

#[test]
fn rolling_update_loses_zero_requests_and_cycles_every_device() {
    let (mut fleet, specs) = build_fleet(rolling_shape(), 6, 300);
    let rep = fleet.serve(&specs, &serve_cfg(3000.0, 7)).unwrap();
    let a = &rep.aggregate;
    assert_eq!(a.failed, 0, "a planned drain must not fail requests");
    assert_eq!(
        a.completed + a.shed,
        a.offered,
        "every request is completed or cleanly shed during the update"
    );
    let ctl = rep.control.as_ref().expect("control plane was active");
    assert_eq!(ctl.counts.failed, 0);
    assert_eq!(ctl.counts.draining, 4, "all four devices drained");
    assert_eq!(ctl.counts.updating, 4);
    assert_eq!(ctl.counts.rebooting, 4);
    assert_eq!(
        ctl.counts.in_service, 8,
        "initial bring-up plus one re-entry per device"
    );
    for (i, d) in ctl.devices.iter().enumerate() {
        assert_eq!(
            d.final_state,
            DeviceState::InService,
            "dev{i} must finish its maintenance window inside the run"
        );
    }
}

#[test]
fn control_plane_output_is_byte_identical_across_reruns_and_jobs() {
    // Rerun identity with the control plane active.
    let a = render(rolling_shape(), 6, 3000.0, 7);
    let b = render(rolling_shape(), 6, 3000.0, 7);
    assert_eq!(a, b, "control plan must not break byte-determinism");
    assert!(a.contains("control: transitions"), "control block rendered");

    // Jobs-fan-out identity over an rps ladder: each cell builds its own
    // fleet (the bench binaries' recipe), so worker count must not leak
    // into any byte of the control block either.
    let ladder = [1000.0, 2000.0, 4000.0];
    let serial = run_parallel(1, &ladder, |r| render(rolling_shape(), 6, *r, 7));
    let fanned = run_parallel(4, &ladder, |r| render(rolling_shape(), 6, *r, 7));
    assert_eq!(serial, fanned);
}

#[test]
fn kill_with_heal_ends_healthy_and_back_in_service() {
    let mut cfg = FleetConfig::new(4);
    cfg.placement = PlacementPolicy::RoundRobin;
    cfg.seed = 7;
    cfg.kills = vec![DeviceKill::parse("1@0.005").unwrap()];
    cfg.control.heal = Some(HealPolicy::default());
    let (mut fleet, specs) = build_fleet(cfg, 6, 300);
    let mut scfg = serve_cfg(3000.0, 7);
    // A generous latency objective so the pinned verdict is about loop
    // closure (SLO -> health), not about absolute simulator speed.
    let mut tele = TelemetryConfig::new(SimDuration::from_millis(5));
    tele.slo = SloSpec::parse("p99<500ms").unwrap();
    scfg.telemetry = Some(tele);
    let rep = fleet.serve(&specs, &scfg).unwrap();

    let ctl = rep.control.as_ref().expect("control plane was active");
    assert_eq!(ctl.counts.failed, 1, "exactly the scheduled kill");
    assert_eq!(ctl.counts.rebooting, 1, "the heal pulled it for repair");
    let dev1 = &ctl.devices[1];
    assert_eq!(
        dev1.final_state,
        DeviceState::InService,
        "healed device must be back in service by end of run"
    );
    let states: Vec<DeviceState> = dev1.transitions.iter().map(|t| t.to).collect();
    assert_eq!(
        states,
        vec![
            DeviceState::InService,
            DeviceState::Failed,
            DeviceState::Rebooting,
            DeviceState::InService,
        ],
        "kill -> detect -> repair -> re-admit, in order"
    );
    // Pinned SLO verdict: the run ends healthy on every device that saw
    // traffic, and no device is left violating.
    for (i, d) in ctl.devices.iter().enumerate() {
        assert_ne!(
            d.health,
            Health::Violating,
            "dev{i} must not end the run violating its SLO"
        );
    }
    assert!(
        ctl.devices.iter().any(|d| d.health == Health::Healthy),
        "at least one device closed the loop with a MET verdict"
    );
    assert_eq!(rep.aggregate.failed, 0, "redispatch absorbed the outage");
}
