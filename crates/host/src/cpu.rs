//! CPU timing: cores, DVFS, and per-code-class IPC.

use morpheus_simcore::SimDuration;

/// Classes of code with distinct instruction-level parallelism on the
/// modelled out-of-order core.
///
/// The paper measures deserialization at IPC ≈ 1.2 ("decoding ASCII strings
/// does not make wise use of the rich instruction-level parallelism inside
/// a CPU core", §II) while optimized compute kernels run much wider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeClass {
    /// Byte scanning + string-to-binary conversion (IPC ≈ 1.2).
    Deserialize,
    /// Software-emulated floating-point conversion (serial, IPC ≈ 1.0).
    SoftFloat,
    /// Kernel-mode OS work: syscalls, VFS, locking (IPC ≈ 1.0).
    OsKernel,
    /// Optimized application compute kernels (IPC ≈ 2.4).
    AppKernel,
}

/// Static description of a CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Number of cores.
    pub cores: u32,
    /// Maximum (and default) clock, Hz.
    pub max_freq_hz: f64,
    /// Minimum DVFS clock, Hz.
    pub min_freq_hz: f64,
    /// IPC for [`CodeClass::Deserialize`].
    pub ipc_deserialize: f64,
    /// IPC for [`CodeClass::SoftFloat`].
    pub ipc_soft_float: f64,
    /// IPC for [`CodeClass::OsKernel`].
    pub ipc_os: f64,
    /// IPC for [`CodeClass::AppKernel`].
    pub ipc_kernel: f64,
}

impl CpuSpec {
    /// The paper's testbed: quad-core Ivy Bridge EP Xeon, 1.2–2.5 GHz.
    pub fn xeon_quad() -> Self {
        CpuSpec {
            cores: 4,
            max_freq_hz: 2.5e9,
            min_freq_hz: 1.2e9,
            ipc_deserialize: 1.2,
            ipc_soft_float: 1.0,
            ipc_os: 1.0,
            ipc_kernel: 2.4,
        }
    }

    /// IPC for a code class.
    pub fn ipc(&self, class: CodeClass) -> f64 {
        match class {
            CodeClass::Deserialize => self.ipc_deserialize,
            CodeClass::SoftFloat => self.ipc_soft_float,
            CodeClass::OsKernel => self.ipc_os,
            CodeClass::AppKernel => self.ipc_kernel,
        }
    }
}

/// A CPU instance with a current DVFS operating point.
#[derive(Debug, Clone)]
pub struct Cpu {
    spec: CpuSpec,
    freq_hz: f64,
}

impl Cpu {
    /// Creates a CPU running at its maximum frequency.
    pub fn new(spec: CpuSpec) -> Self {
        Cpu {
            freq_hz: spec.max_freq_hz,
            spec,
        }
    }

    /// The static specification.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Current clock in Hz.
    pub fn frequency(&self) -> f64 {
        self.freq_hz
    }

    /// Sets the DVFS operating point, clamped to the spec's range.
    pub fn set_frequency(&mut self, freq_hz: f64) {
        self.freq_hz = freq_hz.clamp(self.spec.min_freq_hz, self.spec.max_freq_hz);
    }

    /// Time for one core to retire `instructions` of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is negative or not finite.
    pub fn duration(&self, instructions: f64, class: CodeClass) -> SimDuration {
        assert!(
            instructions.is_finite() && instructions >= 0.0,
            "instruction count must be finite and non-negative"
        );
        let ips = self.spec.ipc(class) * self.freq_hz;
        SimDuration::from_secs_f64(instructions / ips)
    }

    /// Instructions one core retires in `time` for the given class
    /// (inverse of [`duration`](Cpu::duration), used by co-runner models).
    pub fn instructions_in(&self, time: SimDuration, class: CodeClass) -> f64 {
        self.spec.ipc(class) * self.freq_hz * time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_inversely_with_frequency() {
        let mut cpu = Cpu::new(CpuSpec::xeon_quad());
        let at_max = cpu.duration(1e9, CodeClass::Deserialize);
        cpu.set_frequency(1.25e9);
        let at_half = cpu.duration(1e9, CodeClass::Deserialize);
        // Allow one nanosecond of rounding slack.
        assert!(at_half.as_nanos().abs_diff(at_max.as_nanos() * 2) <= 1);
    }

    #[test]
    fn frequency_clamped_to_spec() {
        let mut cpu = Cpu::new(CpuSpec::xeon_quad());
        cpu.set_frequency(10e9);
        assert_eq!(cpu.frequency(), 2.5e9);
        cpu.set_frequency(0.1e9);
        assert_eq!(cpu.frequency(), 1.2e9);
    }

    #[test]
    fn kernel_code_is_faster_per_instruction() {
        let cpu = Cpu::new(CpuSpec::xeon_quad());
        let deser = cpu.duration(1e9, CodeClass::Deserialize);
        let kernel = cpu.duration(1e9, CodeClass::AppKernel);
        assert!(kernel < deser);
    }

    #[test]
    fn instructions_in_inverts_duration() {
        let cpu = Cpu::new(CpuSpec::xeon_quad());
        let d = cpu.duration(3e8, CodeClass::OsKernel);
        let i = cpu.instructions_in(d, CodeClass::OsKernel);
        assert!((i - 3e8).abs() / 3e8 < 1e-6);
    }

    #[test]
    fn zero_instructions_take_no_time() {
        let cpu = Cpu::new(CpuSpec::xeon_quad());
        assert!(cpu.duration(0.0, CodeClass::AppKernel).is_zero());
    }

    #[test]
    #[should_panic(expected = "instruction count")]
    fn negative_instructions_rejected() {
        let cpu = Cpu::new(CpuSpec::xeon_quad());
        let _ = cpu.duration(-1.0, CodeClass::AppKernel);
    }
}
