//! Text data-interchange formats with work accounting.
//!
//! The heart of the paper is the observation that turning ASCII text (CSV,
//! TXT, edge lists, matrix dumps) into binary application objects is
//! expensive, low-IPC work. This crate implements that work *for real* —
//! byte-exact tokenizing, integer and float conversion, streaming parsing
//! with chunk-boundary carry — and simultaneously *accounts* it
//! ([`ParseWork`]) so the host CPU model and the SSD's embedded-core model
//! can both price exactly the same parse with their own cost tables
//! ([`CostModel`]).
//!
//! The same parser code runs in the conventional (host) path and inside
//! StorageApps (device path); the produced [`ParsedColumns`] are
//! bit-identical, which the cross-mode equivalence tests rely on.
//!
//! # Example
//!
//! ```
//! use morpheus_format::{FieldKind, Schema, StreamingParser};
//!
//! // An edge list: two u32 columns per record.
//! let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
//! let mut parser = StreamingParser::new(schema);
//! parser.feed(b"0 1\n1 2\n2 ").unwrap(); // chunk ends mid-record
//! parser.feed(b"0\n").unwrap();
//! let parsed = parser.finish().unwrap();
//! assert_eq!(parsed.records, 3);
//! assert_eq!(parsed.columns[0].as_ints().unwrap(), &[0, 1, 2]);
//! ```

#![warn(missing_docs)]

mod binfmt;
mod error;
mod printer;
mod scanner;
mod schema;
mod stream;
mod work;

pub use binfmt::{encode_binary, parse_binary, BinaryStreamParser, Endianness};
pub use error::{ParseError, ParseErrorKind};
pub use printer::{SerializeWork, TextWriter};
pub use scanner::TextScanner;
pub use schema::{parse_buffer, Column, FieldKind, ParsedColumns, Schema};
pub use stream::{parse_chunked, StreamingParser};
pub use work::{CostModel, ParseWork};
