//! Property tests: the flash array as a state machine checked against a
//! reference model of NAND rules.

use morpheus_flash::{BlockId, FlashArray, FlashError, FlashGeometry, FlashTiming, PageState, Ppa};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Program(u64, u8),
    Read(u64),
    Erase(u64),
    Invalidate(u64),
}

fn op_strategy(pages: u64, blocks: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..pages, any::<u8>()).prop_map(|(p, v)| Op::Program(p, v)),
        3 => (0..pages).prop_map(Op::Read),
        1 => (0..blocks).prop_map(Op::Erase),
        1 => (0..pages).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The array must agree with a simple reference model: page contents
    /// after programs/erases, program-once, sequential-program order, and
    /// reads of free pages failing.
    #[test]
    fn flash_matches_reference_model(
        ops in {
            let g = FlashGeometry::small();
            proptest::collection::vec(op_strategy(g.total_pages(), g.total_blocks()), 1..300)
        },
    ) {
        let g = FlashGeometry::small();
        let mut flash = FlashArray::new(g, FlashTiming::default());
        // Reference: contents + per-block write pointer.
        let mut contents: HashMap<u64, u8> = HashMap::new();
        let mut write_point: HashMap<u64, u32> = HashMap::new();
        let ppb = g.pages_per_block as u64;

        for op in ops {
            match op {
                Op::Program(p, v) => {
                    let ppa = Ppa(p);
                    let block = p / ppb;
                    let idx = (p % ppb) as u32;
                    let expect_ok = !contents.contains_key(&p)
                        && *write_point.entry(block).or_insert(0) == idx;
                    match flash.program_page(ppa, &[v]) {
                        Ok(_) => {
                            prop_assert!(expect_ok, "model says program {p} should fail");
                            contents.insert(p, v);
                            write_point.insert(block, idx + 1);
                        }
                        Err(FlashError::ProgramTwice(_)) => {
                            prop_assert!(contents.contains_key(&p));
                        }
                        Err(FlashError::ProgramOutOfOrder { expected_page, .. }) => {
                            prop_assert_ne!(expected_page, idx);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
                    }
                }
                Op::Read(p) => match flash.read_page(Ppa(p)) {
                    Ok((data, _)) => {
                        let want = contents.get(&p).copied();
                        prop_assert_eq!(Some(data[0]), want, "stale data at {}", p);
                    }
                    Err(FlashError::ReadOfFreePage(_)) => {
                        prop_assert!(!contents.contains_key(&p));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
                },
                Op::Erase(b) => {
                    flash.erase_block(BlockId(b)).unwrap();
                    for p in (b * ppb)..((b + 1) * ppb) {
                        contents.remove(&p);
                    }
                    write_point.insert(b, 0);
                }
                Op::Invalidate(p) => {
                    if flash.geometry().contains(Ppa(p)) {
                        flash.invalidate_page(Ppa(p));
                        // Contents stay readable (GC semantics).
                    }
                }
            }
        }
        // Final audit: every modelled page matches; states are consistent.
        for (p, v) in &contents {
            let (data, _) = flash.read_page(Ppa(*p)).unwrap();
            prop_assert_eq!(data[0], *v);
        }
        for p in 0..g.total_pages() {
            let st = flash.page_state(Ppa(p));
            if !contents.contains_key(&p) {
                prop_assert_eq!(st, PageState::Free, "page {} should be free", p);
            } else {
                prop_assert_ne!(st, PageState::Free, "page {} should hold data", p);
            }
        }
    }

    /// Erase counts only ever grow, and exactly one per erase.
    #[test]
    fn wear_is_monotone(erases in proptest::collection::vec(0u64..16, 1..100)) {
        let g = FlashGeometry::small();
        let mut flash = FlashArray::new(g, FlashTiming::default());
        let mut model = vec![0u64; g.total_blocks() as usize];
        for b in erases {
            flash.erase_block(BlockId(b)).unwrap();
            model[b as usize] += 1;
            prop_assert_eq!(flash.erase_count(BlockId(b)), model[b as usize]);
        }
        prop_assert_eq!(flash.stats().erases, model.iter().sum::<u64>());
    }
}
