//! Criterion: flash-backed KV store operation throughput (simulator
//! wall-clock).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use morpheus_flash::{FlashGeometry, FlashTiming};
use morpheus_kvstore::{synth_pairs, KvConfig, KvStore};
use morpheus_ssd::{Ssd, SsdConfig};
use std::hint::black_box;

fn populated() -> (Ssd, KvStore) {
    let mut ssd = Ssd::new(
        SsdConfig::default(),
        FlashGeometry::workload(),
        FlashTiming::default(),
    );
    let kv = KvStore::format(&mut ssd, 0, KvConfig::default()).unwrap();
    for (k, v) in synth_pairs(500, 100_000, 1) {
        kv.put(&mut ssd, k, &v).unwrap();
    }
    (ssd, kv)
}

fn bench_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore");

    g.bench_function("put_500_pairs", |b| {
        b.iter_batched(
            || {
                let mut ssd = Ssd::new(
                    SsdConfig::default(),
                    FlashGeometry::workload(),
                    FlashTiming::default(),
                );
                let kv = KvStore::format(&mut ssd, 0, KvConfig::default()).unwrap();
                (ssd, kv, synth_pairs(500, 100_000, 2))
            },
            |(mut ssd, kv, pairs)| {
                for (k, v) in &pairs {
                    kv.put(&mut ssd, *k, v).unwrap();
                }
                black_box(ssd.stats())
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("get_hit", |b| {
        let (mut ssd, kv) = populated();
        let keys: Vec<u64> = synth_pairs(500, 100_000, 1)
            .iter()
            .map(|(k, _)| *k)
            .collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(kv.get(&mut ssd, keys[i]).unwrap())
        })
    });

    g.bench_function("range_scan_host", |b| {
        let (mut ssd, kv) = populated();
        b.iter(|| black_box(kv.scan_range_host(&mut ssd, 10_000, 60_000).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
