//! Real compute kernels consuming the deserialized objects.
//!
//! These are functional reference implementations of each benchmark's
//! computation (the timing of the kernels comes from the `AppSpec` cost
//! model; these implementations produce the *results* and the digests the
//! cross-mode equivalence tests compare).

pub mod graph;
pub mod kmeans;
pub mod matrix;
pub mod nn;
pub mod scan;
pub mod sort;
pub mod spmv;

/// Output of a kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelResult {
    /// Order-sensitive digest of the computation's result.
    pub digest: u64,
    /// A one-line human-readable summary.
    pub summary: String,
}
