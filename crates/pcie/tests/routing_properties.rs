//! Property tests: routing matches window membership; traffic accounting
//! is conserved.

use morpheus_pcie::{DmaDir, Fabric, LinkConfig, PcieGen, Target, HOST_MEMORY_TOP};
use morpheus_simcore::SimTime;
use proptest::prelude::*;

proptest! {
    /// For any set of mapped windows and any probe address, `route` returns
    /// Device(d) iff the address is inside d's window, HostMemory iff it is
    /// below the DRAM top, and Unmapped otherwise.
    #[test]
    fn routing_matches_membership(
        sizes in proptest::collection::vec(1u64..(4 << 20), 1..8),
        probe in any::<u64>(),
    ) {
        let mut f = Fabric::new(LinkConfig::new(PcieGen::Gen3, 8));
        let mut devs = Vec::new();
        let mut windows = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let d = f.add_device(format!("dev{i}"), LinkConfig::new(PcieGen::Gen3, 4));
            devs.push(d);
            windows.push(f.map_bar(d, *size).unwrap());
        }
        let got = f.route(probe);
        if probe < HOST_MEMORY_TOP {
            prop_assert_eq!(got, Target::HostMemory);
        } else if let Some(w) = windows.iter().find(|w| w.contains(probe)) {
            prop_assert_eq!(got, Target::Device(w.device));
        } else {
            prop_assert_eq!(got, Target::Unmapped);
        }
    }

    /// total = root + p2p for any DMA mix, and per-device byte counters
    /// never exceed the total.
    #[test]
    fn traffic_accounting_conserved(
        ops in proptest::collection::vec((any::<bool>(), any::<bool>(), 1u64..(1 << 20)), 1..50),
    ) {
        let mut f = Fabric::new(LinkConfig::new(PcieGen::Gen3, 8));
        let ssd = f.add_device("ssd", LinkConfig::new(PcieGen::Gen3, 4));
        let gpu = f.add_device("gpu", LinkConfig::new(PcieGen::Gen3, 16));
        let bar = f.map_bar(gpu, 1 << 30).unwrap();
        for (to_gpu, write, bytes) in ops {
            let addr = if to_gpu { bar.base } else { 0x1000 };
            let dir = if write { DmaDir::Write } else { DmaDir::Read };
            f.dma(ssd, dir, addr, bytes, SimTime::ZERO).unwrap();
        }
        let t = f.traffic();
        prop_assert_eq!(t.total_bytes, t.root_bytes + t.p2p_bytes);
        prop_assert!(f.device_bytes(gpu) <= t.total_bytes);
    }

    /// DMA completion times are monotone along a shared link: issuing the
    /// same transfers in sequence never finishes earlier than any earlier
    /// transfer.
    #[test]
    fn shared_link_completions_are_monotone(
        sizes in proptest::collection::vec(1u64..(4 << 20), 2..20),
    ) {
        let mut f = Fabric::new(LinkConfig::new(PcieGen::Gen3, 8));
        let ssd = f.add_device("ssd", LinkConfig::new(PcieGen::Gen3, 4));
        let mut last = SimTime::ZERO;
        for bytes in sizes {
            let out = f.dma(ssd, DmaDir::Write, 0, bytes, SimTime::ZERO).unwrap();
            prop_assert!(out.end >= last);
            last = out.end;
        }
    }
}
