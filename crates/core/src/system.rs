//! Full-system composition (Fig. 5): host, Morpheus-SSD, GPU, PCIe fabric.

use crate::cache::{CacheConfig, CacheStats, ObjectCache};
use crate::faults::FaultInjector;
use crate::{MorpheusSsd, SystemParams};
use morpheus_flash::EccModel;
use morpheus_gpu::Gpu;
use morpheus_host::{Cpu, FileMeta, FsError, HostDram, MemBus, OsModel, SimFs};
use morpheus_nvme::{CompletionEntry, NvmeCommand, StatusCode, LBA_BYTES, MAX_IO_BLOCKS};
use morpheus_pcie::{BarWindow, DeviceId, Fabric};
use morpheus_simcore::{
    Bandwidth, FaultCounters, FaultPlan, Histogram, SimDuration, Timeline, Tracer,
};
use morpheus_ssd::{Ssd, SsdError};

/// One I/O command's worth of a file: an LBA range plus how many of its
/// bytes are real file content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkIo {
    /// Starting LBA.
    pub slba: u64,
    /// Blocks to transfer.
    pub blocks: u64,
    /// Valid file bytes within the range (the tail of the last block may
    /// be padding).
    pub valid_bytes: u64,
    /// Byte offset of this chunk within the file.
    pub file_offset: u64,
}

/// Fixed-size bitmap over the full 16-bit command-identifier space.
///
/// The CID allocator probes and clears this on every command issue and
/// completion — the serving hot path — where a `HashSet<u16>` pays a hash
/// and a heap-bucket walk per operation. One bit per CID (8 KiB total)
/// makes membership a shift and mask, with the same insert/remove
/// semantics the set had.
#[derive(Debug)]
pub(crate) struct CidSet {
    words: Box<[u64; 1024]>,
    len: usize,
}

impl CidSet {
    pub(crate) fn new() -> Self {
        CidSet {
            words: Box::new([0u64; 1024]),
            len: 0,
        }
    }

    /// Marks `id` in flight; returns false if it already was.
    pub(crate) fn insert(&mut self, id: u16) -> bool {
        let (w, bit) = (usize::from(id) >> 6, 1u64 << (id & 63));
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.len += 1;
        true
    }

    /// Clears `id` after its completion is reaped.
    pub(crate) fn remove(&mut self, id: u16) {
        let (w, bit) = (usize::from(id) >> 6, 1u64 << (id & 63));
        if self.words[w] & bit != 0 {
            self.words[w] &= !bit;
            self.len -= 1;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

/// The modelled platform: a quad-core Xeon host with DDR3 memory, a PCIe
/// 3.0 fabric, the Morpheus-SSD, and a K20-class GPU.
///
/// Input files are staged once with [`create_input_file`] (bytes live in
/// the simulated flash, behind the FTL); timed runs execute over them via
/// [`System::run`](crate::System::run) and can be repeated —
/// [`reset_timing`] rewinds the clocks without touching storage.
///
/// [`create_input_file`]: System::create_input_file
/// [`reset_timing`]: System::reset_timing
#[derive(Debug)]
pub struct System {
    /// Platform parameters.
    pub params: SystemParams,
    /// Host CPU (DVFS operating point lives here).
    pub cpu: Cpu,
    /// Host core pool timeline.
    pub cpu_cores: Timeline,
    /// OS overhead model and accounting.
    pub os: OsModel,
    /// CPU-memory bus.
    pub membus: MemBus,
    /// Host DRAM occupancy.
    pub dram: HostDram,
    /// The mini filesystem over the SSD's logical block space.
    pub fs: SimFs,
    /// The Morpheus-SSD.
    pub mssd: MorpheusSsd,
    /// The GPU.
    pub gpu: Gpu,
    /// The PCIe switch fabric.
    pub fabric: Fabric,
    /// Synthetic HDD used by the Fig. 3 conventional-path comparison.
    pub hdd: Timeline,
    pub(crate) ssd_dev: DeviceId,
    pub(crate) gpu_dev: DeviceId,
    pub(crate) gpu_bar: Option<BarWindow>,
    pub(crate) next_instance: u32,
    pub(crate) next_cid: u16,
    /// CIDs handed out but not yet completed. A CID is only unique among
    /// commands in flight (NVMe 1.2 §4.2), so the allocator must skip
    /// these when the 16-bit counter wraps under sustained load.
    pub(crate) in_flight_cids: CidSet,
    pub(crate) tracer: Tracer,
    pub(crate) nvme_lat: Histogram,
    /// The installed fault plan (inactive by default).
    pub(crate) fault_plan: FaultPlan,
    /// Armed fault streams + per-run counters; `None` when the plan is
    /// inactive, so the fault-free path costs one branch per site.
    pub(crate) faults: Option<FaultInjector>,
    /// True while the flash error model is overridden by the fault plan
    /// (so clearing the plan restores the configured model).
    media_overridden: bool,
    /// The tiered deserialized-object cache; `None` (the default) is
    /// cache-off and costs nothing. Installed via
    /// [`set_object_cache`](System::set_object_cache); contents survive
    /// [`reset_timing`](System::reset_timing) like staged files do.
    pub(crate) object_cache: Option<ObjectCache>,
    /// When set, each run folds its trace into a windowed
    /// [`TelemetryReport`](morpheus_simcore::TelemetryReport) at this
    /// window width. Requires an enabled tracer to see any events.
    pub(crate) telemetry_window: Option<SimDuration>,
    /// Trace length at the start of the current run, so suite telemetry
    /// folds only this run's events (the trace accumulates across runs
    /// while run clocks restart at zero).
    pub(crate) telemetry_mark: usize,
    /// Per-file content digests backing the deserialization memo keys
    /// (`deser_memo`); dropped whenever the file mutates.
    pub(crate) deser_digests: std::collections::HashMap<String, u64>,
}

impl System {
    /// Builds the platform.
    pub fn new(params: SystemParams) -> Self {
        let ssd = Ssd::with_ecc(
            params.ssd,
            params.flash_geometry,
            params.flash_timing,
            params.flash_ecc,
            params.flash_seed,
        );
        let mut fabric = Fabric::new(params.root_link);
        let ssd_dev = fabric.add_device("morpheus-ssd", params.ssd_link);
        let gpu_dev = fabric.add_device("gpu", params.gpu_link);
        let fs = SimFs::new(LBA_BYTES, ssd.capacity_lbas());
        let mut cpu = Cpu::new(params.cpu);
        cpu.set_frequency(params.cpu.max_freq_hz);
        System {
            cpu_cores: Timeline::new("host-cpu", params.effective_cores() as usize),
            cpu,
            os: OsModel::new(params.effective_os()),
            membus: MemBus::new(Bandwidth::from_gb_per_s(params.effective_membus_gbs())),
            dram: HostDram::new(params.host_dram_bytes),
            fs,
            mssd: MorpheusSsd::new(ssd, params.device_cost),
            gpu: Gpu::new(params.gpu),
            fabric,
            hdd: Timeline::new("hdd", 1),
            ssd_dev,
            gpu_dev,
            gpu_bar: None,
            next_instance: 1,
            next_cid: 0,
            in_flight_cids: CidSet::new(),
            tracer: Tracer::disabled(),
            nvme_lat: Histogram::new(),
            fault_plan: FaultPlan::none(),
            faults: None,
            media_overridden: false,
            object_cache: None,
            telemetry_window: None,
            telemetry_mark: 0,
            deser_digests: std::collections::HashMap::new(),
            params,
        }
    }

    /// Installs a trace handle across every layer of the platform (host,
    /// NVMe, FTL, flash, StorageApp firmware, PCIe). Survives
    /// [`reset_timing`](System::reset_timing), so enable it once and every
    /// subsequent run records. Disabled by default at zero cost.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mssd.set_tracer(tracer.clone());
        self.fabric.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The installed trace handle (disabled unless
    /// [`set_tracer`](System::set_tracer) was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs a fault-injection plan (clear it with an inactive plan,
    /// e.g. [`FaultPlan::none`]). Takes effect at the next run:
    /// [`System::run`](crate::System::run) re-arms every fault stream from
    /// the plan's seed in [`reset_timing`](System::reset_timing), so
    /// repeated runs see identical fault schedules.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// The installed fault plan (inactive by default).
    pub fn fault_plan(&self) -> FaultPlan {
        self.fault_plan
    }

    /// Enables (or disables with `None`) windowed run telemetry: each
    /// subsequent [`run`](crate::System::run) folds the events it traced
    /// into `RunReport::telemetry` at this window width. The fold reads
    /// the trace, so install an enabled [`Tracer`] via
    /// [`set_tracer`](System::set_tracer) first — with tracing disabled
    /// the report is present but empty.
    pub fn set_telemetry_window(&mut self, window: Option<SimDuration>) {
        self.telemetry_window = window;
    }

    /// The installed telemetry window (`None` = telemetry off).
    pub fn telemetry_window(&self) -> Option<SimDuration> {
        self.telemetry_window
    }

    /// Fault/recovery counters of the current (or last finished) run. All
    /// zero when no plan is installed.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// The rendered cause chain of the last host fallback this run, if a
    /// Morpheus-mode run degraded to host-side deserialization.
    pub fn last_fallback_cause(&self) -> Option<&str> {
        self.faults
            .as_ref()
            .and_then(|f| f.fallback_cause.as_deref())
    }

    /// Installs (or resizes) the tiered deserialized-object cache, see
    /// `docs/CACHE.md`. The DRAM-tier budget is reserved up front through
    /// the firmware's controller-DRAM accounting
    /// ([`MorpheusSsd::reserve_object_cache`]) and the host spill-tier
    /// budget from host DRAM, so cached objects occupy the same modelled
    /// memory StorageApp instances and request buffers use. A config with
    /// both capacities zero uninstalls the cache (cache-off must stay
    /// byte-identical to the pre-cache reports).
    ///
    /// # Panics
    ///
    /// Panics when a tier budget does not fit its memory (a config bug).
    pub fn set_object_cache(&mut self, cfg: CacheConfig) {
        self.clear_object_cache();
        if !cfg.is_enabled() {
            return;
        }
        if cfg.dram_bytes > 0 {
            assert!(
                self.mssd.reserve_object_cache(cfg.dram_bytes),
                "object-cache DRAM tier must fit controller DRAM"
            );
        }
        if cfg.host_bytes > 0 {
            self.dram
                .alloc(cfg.host_bytes)
                .expect("object-cache host tier must fit host DRAM");
        }
        self.object_cache = Some(ObjectCache::new(cfg));
    }

    /// Uninstalls the object cache and returns its tier reservations.
    pub fn clear_object_cache(&mut self) {
        if let Some(c) = self.object_cache.take() {
            self.mssd.release_object_cache(c.config().dram_bytes);
            self.dram.free(c.config().host_bytes);
        }
    }

    /// Counters and occupancy of the installed object cache (`None` when
    /// no cache is installed).
    pub fn object_cache_stats(&self) -> Option<CacheStats> {
        self.object_cache.as_ref().map(|c| c.stats())
    }

    /// Drops every cached object deserialized from `file` (the
    /// MWRITE/file-mutation invalidation hook; every staging and
    /// serialization path calls this so cached objects can never go
    /// stale). Returns how many entries were dropped.
    pub fn invalidate_cached_objects(&mut self, file: &str) -> u64 {
        // The deser-memo content digest is keyed by name and must never
        // survive a mutation of the underlying bytes.
        self.deser_digests.remove(file);
        let Some(cache) = self.object_cache.as_mut() else {
            return 0;
        };
        let n = cache.invalidate_file(file);
        let events = cache.take_events();
        let tracer = self.tracer.clone();
        for _ in events {
            // Mutation happens between timed runs; anchor at time zero.
            tracer.instant(
                morpheus_simcore::TraceLayer::Ssd,
                "cache",
                "invalidate",
                morpheus_simcore::SimTime::ZERO,
            );
        }
        n
    }

    /// Replaces a staged file's bytes (the file-mutation path; creates the
    /// file if it does not exist). Cached objects parsed from the old
    /// bytes are invalidated first. The bump-allocated filesystem does not
    /// reuse the old extents — staging is untimed, so only capacity is
    /// lost.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and drive errors.
    pub fn overwrite_input_file(&mut self, name: &str, data: &[u8]) -> Result<(), SsdError> {
        let _ = self.fs.remove(name);
        self.create_input_file(name, data)
    }

    /// Creates a file and stages its bytes on the SSD (untimed: inputs are
    /// on the drive before the measured window starts, as in the paper).
    /// Invalidates any cached objects keyed to `name` (a re-created name
    /// is a mutation).
    ///
    /// # Errors
    ///
    /// Propagates filesystem and drive errors.
    pub fn create_input_file(&mut self, name: &str, data: &[u8]) -> Result<(), SsdError> {
        self.invalidate_cached_objects(name);
        let meta = self
            .fs
            .create(name, data.len() as u64)
            .map_err(|e| match e {
                FsError::NoSpace => SsdError::LbaOutOfRange {
                    slba: 0,
                    blocks: data.len() as u64 / LBA_BYTES,
                },
                other => panic!("file staging failed: {other}"),
            })?
            .clone();
        let mut off = 0usize;
        for e in &meta.extents {
            let ext_bytes = (e.blocks * LBA_BYTES) as usize;
            let end = (off + ext_bytes).min(data.len());
            if off >= end {
                break;
            }
            self.mssd.dev.load_at(e.slba, &data[off..end])?;
            off = end;
        }
        Ok(())
    }

    /// Reads a staged file back (untimed; functional verification).
    ///
    /// # Errors
    ///
    /// Fails for unknown files or drive errors.
    pub fn read_file_bytes(&mut self, name: &str) -> Result<Vec<u8>, SsdError> {
        let meta = match self.fs.open(name) {
            Ok(m) => m.clone(),
            Err(_) => return Err(SsdError::LbaOutOfRange { slba: 0, blocks: 0 }),
        };
        let mut out = Vec::with_capacity(meta.len as usize);
        let mut remaining = meta.len;
        for e in &meta.extents {
            if remaining == 0 {
                break;
            }
            let bytes = self.mssd.dev.read_range_untimed(e.slba, e.blocks)?;
            let take = remaining.min(e.blocks * LBA_BYTES) as usize;
            out.extend_from_slice(&bytes[..take]);
            remaining -= take as u64;
        }
        Ok(out)
    }

    /// Splits a file into I/O chunks of at most `chunk_bytes` (and at most
    /// the NVMe per-command limit), respecting extent boundaries.
    pub fn file_chunks(meta: &FileMeta, chunk_bytes: u64) -> Vec<ChunkIo> {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        let max_cmd_bytes = MAX_IO_BLOCKS * LBA_BYTES;
        // I/O happens in whole logical blocks: round the stride down to an
        // LBA multiple (only the file's final chunk may be partial).
        let step = (chunk_bytes.min(max_cmd_bytes) / LBA_BYTES).max(1) * LBA_BYTES;
        let mut chunks = Vec::new();
        let mut remaining = meta.len;
        let mut file_offset = 0u64;
        for e in &meta.extents {
            let mut ext_off = 0u64;
            let ext_bytes = e.blocks * LBA_BYTES;
            while ext_off < ext_bytes && remaining > 0 {
                let valid = remaining.min(step).min(ext_bytes - ext_off);
                let blocks = valid.div_ceil(LBA_BYTES);
                chunks.push(ChunkIo {
                    slba: e.slba + ext_off / LBA_BYTES,
                    blocks,
                    valid_bytes: valid,
                    file_offset,
                });
                ext_off += blocks * LBA_BYTES;
                file_offset += valid;
                remaining -= valid;
            }
        }
        chunks
    }

    /// Maps the GPU's device memory into a PCIe BAR (the NVMe-P2P setup
    /// step performed via GPUDirect/DirectGMA) and returns the window.
    pub fn map_gpu_bar(&mut self) -> BarWindow {
        if let Some(w) = self.gpu_bar {
            return w;
        }
        let w = self
            .fabric
            .map_bar(self.gpu_dev, self.gpu.spec().memory_bytes)
            .expect("gpu memory is non-empty");
        self.gpu_bar = Some(w);
        w
    }

    /// The fabric id of the SSD.
    pub fn ssd_device(&self) -> DeviceId {
        self.ssd_dev
    }

    /// The fabric id of the GPU.
    pub fn gpu_device(&self) -> DeviceId {
        self.gpu_dev
    }

    /// Rewinds every clock, counter, and occupancy to time zero while
    /// keeping staged files intact, so successive runs start fresh.
    pub fn reset_timing(&mut self) {
        self.cpu_cores = Timeline::new("host-cpu", self.params.effective_cores() as usize);
        self.os.reset();
        self.membus = MemBus::new(Bandwidth::from_gb_per_s(self.params.effective_membus_gbs()));
        self.dram = HostDram::new(self.params.host_dram_bytes);
        self.hdd.reset();
        // Host DRAM was rebuilt above: re-apply the object cache's host
        // spill-tier reservation (the controller-DRAM reservation lives in
        // the drive's accounting, which reset_timing does not clear).
        if let Some(c) = &self.object_cache {
            if c.config().host_bytes > 0 {
                self.dram
                    .alloc(c.config().host_bytes)
                    .expect("host tier fit at install time");
            }
        }
        self.mssd.reset_timing();
        self.gpu = Gpu::new(self.params.gpu);
        let mut fabric = Fabric::new(self.params.root_link);
        self.ssd_dev = fabric.add_device("morpheus-ssd", self.params.ssd_link);
        self.gpu_dev = fabric.add_device("gpu", self.params.gpu_link);
        // The fabric is rebuilt from scratch: re-arm its trace handle.
        fabric.set_tracer(self.tracer.clone());
        self.fabric = fabric;
        self.gpu_bar = None;
        self.nvme_lat = Histogram::new();
        self.arm_faults();
    }

    /// Re-arms the fault plane for the run about to start: every dice is
    /// rebuilt from the plan's seed (identical streams every run), the
    /// flash error model is re-seeded, the fabric's link dice installed,
    /// and media counters snapshotted so the run's numbers are diffs.
    fn arm_faults(&mut self) {
        if !self.fault_plan.is_active() {
            if self.media_overridden {
                self.mssd
                    .dev
                    .set_error_model(self.params.flash_ecc, self.params.flash_seed);
                self.media_overridden = false;
            }
            self.faults = None;
            return;
        }
        let plan = self.fault_plan;
        if plan.flash_correctable > 0.0 || plan.flash_uncorrectable > 0.0 || self.media_overridden {
            let ecc = EccModel {
                correctable_prob: plan.flash_correctable,
                correction_retries: plan.flash_correction_retries,
                uncorrectable_prob: plan.flash_uncorrectable,
                wear_limit: self.params.flash_ecc.wear_limit,
            };
            let mut stream = plan.stream("flash");
            self.mssd.dev.set_error_model(ecc, stream.next_u64());
            self.media_overridden = true;
        }
        if plan.pcie_degrade > 0.0 {
            self.fabric.set_link_faults(
                plan.dice("pcie-link", plan.pcie_degrade),
                plan.pcie_degrade_factor,
            );
        }
        let flash = self.mssd.dev.ftl().flash().stats();
        let ftl = self.mssd.dev.ftl().stats();
        self.faults = Some(FaultInjector::new(
            plan,
            flash.corrected_reads,
            flash.uncorrectable_reads,
            ftl.read_retries,
        ));
    }

    /// Allocates a fresh StorageApp instance ID (for external runtimes
    /// driving the firmware directly, e.g. the KV-store offload).
    pub fn allocate_instance_id(&mut self) -> u32 {
        self.alloc_instance()
    }

    pub(crate) fn alloc_instance(&mut self) -> u32 {
        let id = self.next_instance;
        self.next_instance += 1;
        id
    }

    /// Allocates the next instance ID the firmware will pin to `core`
    /// (MINIT places instances at `id % cores`), giving callers stable
    /// per-tenant core affinity.
    pub(crate) fn alloc_instance_pinned(&mut self, core: usize, cores: usize) -> u32 {
        debug_assert!(core < cores, "core index out of range");
        while self.next_instance as usize % cores != core {
            self.next_instance += 1;
        }
        self.alloc_instance()
    }

    /// Allocates a command identifier that is unique among commands in
    /// flight, wrapping past CIDs still awaiting completion. Callers must
    /// pair every allocation with [`release_cid`](System::release_cid)
    /// once the completion is reaped.
    pub(crate) fn alloc_cid(&mut self) -> u16 {
        assert!(
            self.in_flight_cids.len() < usize::from(u16::MAX) + 1,
            "all 65536 command identifiers are in flight"
        );
        loop {
            let id = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            if self.in_flight_cids.insert(id) {
                return id;
            }
        }
    }

    /// Returns a command identifier to the pool after its completion was
    /// reaped.
    pub(crate) fn release_cid(&mut self, cid: u16) {
        self.in_flight_cids.remove(cid);
    }

    /// Drives one command through the shared I/O queue's full wire
    /// protocol (encode → decode → completion) and releases its CID for
    /// reuse once the completion is reaped, mirroring a real driver's CID
    /// lifecycle.
    pub(crate) fn round_trip(
        &mut self,
        cmd: NvmeCommand,
        status: StatusCode,
        result: u32,
    ) -> CompletionEntry {
        let e = self.mssd.protocol_round_trip(cmd, status, result);
        self.release_cid(e.cid);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_flash::FlashGeometry;

    fn small_system() -> System {
        let mut p = SystemParams::paper_testbed();
        p.flash_geometry = FlashGeometry::small();
        System::new(p)
    }

    #[test]
    fn file_round_trips_through_flash() {
        let mut sys = small_system();
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
        sys.create_input_file("input.bin", &data).unwrap();
        assert_eq!(sys.read_file_bytes("input.bin").unwrap(), data);
    }

    #[test]
    fn chunks_cover_file_exactly_once() {
        let mut sys = small_system();
        sys.fs.set_max_extent_blocks(16); // force fragmentation
        let data = vec![7u8; 40_000];
        sys.create_input_file("frag.bin", &data).unwrap();
        let meta = sys.fs.open("frag.bin").unwrap().clone();
        let chunks = System::file_chunks(&meta, 4096);
        let total: u64 = chunks.iter().map(|c| c.valid_bytes).sum();
        assert_eq!(total, 40_000);
        // Offsets are contiguous.
        let mut expect = 0;
        for c in &chunks {
            assert_eq!(c.file_offset, expect);
            expect += c.valid_bytes;
            assert!(c.blocks * LBA_BYTES >= c.valid_bytes);
        }
    }

    #[test]
    fn gpu_bar_mapped_once() {
        let mut sys = small_system();
        let a = sys.map_gpu_bar();
        let b = sys.map_gpu_bar();
        assert_eq!(a, b);
    }

    #[test]
    fn reset_timing_keeps_files() {
        let mut sys = small_system();
        sys.create_input_file("keep.bin", b"persistent").unwrap();
        sys.cpu_cores.acquire(
            morpheus_simcore::SimTime::ZERO,
            morpheus_simcore::SimDuration::from_secs(1),
        );
        sys.reset_timing();
        assert!(sys.cpu_cores.busy().is_zero());
        assert_eq!(sys.read_file_bytes("keep.bin").unwrap(), b"persistent");
    }

    #[test]
    fn instance_and_cid_allocation_advances() {
        let mut sys = small_system();
        assert_ne!(sys.alloc_instance(), sys.alloc_instance());
        assert_ne!(sys.alloc_cid(), sys.alloc_cid());
    }

    #[test]
    fn pinned_instances_land_on_requested_core() {
        let mut sys = small_system();
        for core in [2usize, 0, 3, 3, 1] {
            let iid = sys.alloc_instance_pinned(core, 4);
            assert_eq!(iid as usize % 4, core);
        }
    }

    #[test]
    fn cid_allocation_survives_u16_exhaustion() {
        // Regression: sustained serving issues far more than 65 536
        // commands; the allocator must wrap without colliding with CIDs
        // still in flight.
        let mut sys = small_system();
        let held: Vec<u16> = (0..8).map(|_| sys.alloc_cid()).collect();
        let held_set: std::collections::HashSet<u16> = held.iter().copied().collect();
        for _ in 0..70_000u32 {
            let cid = sys.alloc_cid();
            assert!(
                !held_set.contains(&cid),
                "fresh CID {cid} collides with an in-flight command"
            );
            let cmd = NvmeCommand::new(morpheus_nvme::IoOpcode::Flush, cid, 1);
            let e = sys.round_trip(cmd, StatusCode::Success, 0);
            assert_eq!(e.cid, cid);
        }
        // The long-held commands complete last; their CIDs stayed theirs.
        for cid in held {
            sys.release_cid(cid);
        }
    }
}
