//! Criterion: raw tokenizer throughput in bytes/s.
//!
//! Exercises `TextScanner` directly — the slice-batched fast path for
//! integer magnitudes and the batched mantissa/exponent scan for floats —
//! without any schema or column-building overhead on top.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use morpheus_format::TextScanner;
use morpheus_workloads::{int_list_text, matrix_text, points_text};
use std::hint::black_box;

fn bench_scanner(c: &mut Criterion) {
    let mut g = c.benchmark_group("scanner");

    let small_ints = int_list_text(1 << 20, 11, 9_999);
    g.throughput(Throughput::Bytes(small_ints.len() as u64));
    g.bench_function("u64_small_magnitudes", |b| {
        b.iter(|| {
            let mut s = TextScanner::new(black_box(&small_ints));
            let mut acc = 0u64;
            while !s.at_end() {
                acc = acc.wrapping_add(s.parse_u64().unwrap());
            }
            acc
        })
    });

    let wide_ints = int_list_text(1 << 20, 12, u64::MAX >> 1);
    g.throughput(Throughput::Bytes(wide_ints.len() as u64));
    g.bench_function("i64_wide_magnitudes", |b| {
        b.iter(|| {
            let mut s = TextScanner::new(black_box(&wide_ints));
            let mut acc = 0i64;
            while !s.at_end() {
                acc = acc.wrapping_add(s.parse_i64().unwrap());
            }
            acc
        })
    });

    let floats = points_text(1 << 20, 13, 4);
    g.throughput(Throughput::Bytes(floats.len() as u64));
    g.bench_function("f64_fixed_point", |b| {
        b.iter(|| {
            let mut s = TextScanner::new(black_box(&floats));
            let mut acc = 0.0f64;
            while !s.at_end() {
                acc += s.parse_f64().unwrap();
            }
            acc
        })
    });

    let matrix = matrix_text(1 << 20, 14);
    g.throughput(Throughput::Bytes(matrix.len() as u64));
    g.bench_function("f64_matrix_rows", |b| {
        b.iter(|| {
            let mut s = TextScanner::new(black_box(&matrix));
            let mut acc = 0.0f64;
            while !s.at_end() {
                acc += s.parse_f64().unwrap();
            }
            acc
        })
    });

    g.finish();
}

criterion_group!(benches, bench_scanner);
criterion_main!(benches);
