//! The benchmark registry and driver (Table I).

use crate::kernels::{graph, kmeans, matrix, nn, scan, sort, spmv, KernelResult};
use crate::{edge_list_text, int_list_text, matrix_text, points_text, sparse_coo_text};
use morpheus::{AppSpec, Mode, RunError, RunReport, System};
use morpheus_format::{FieldKind, ParsedColumns, Schema};
use morpheus_ssd::SsdError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The benchmark suite an application came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// BigDataBench (MPI applications).
    BigDataBench,
    /// Rodinia (CUDA applications).
    Rodinia,
    /// Standalone (the paper's SpMV).
    Standalone,
}

/// One Table-I benchmark: generator, schema, cost model, and real kernel.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Application name.
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Parallel model label as printed in Table I.
    pub parallel_label: &'static str,
    /// The paper's input size for this application.
    pub nominal_bytes: u64,
    schema_fn: fn() -> Schema,
    generate_fn: fn(u64, u64) -> Vec<u8>,
    spec_fn: fn() -> AppSpec,
    kernel_fn: fn(&ParsedColumns) -> KernelResult,
}

impl Benchmark {
    /// The staged input file's name.
    pub fn input_name(&self) -> String {
        format!("{}.txt", self.name)
    }

    /// The record schema of the input format.
    pub fn schema(&self) -> Schema {
        (self.schema_fn)()
    }

    /// Generates a seeded input of roughly `target_bytes`.
    pub fn generate(&self, target_bytes: u64, seed: u64) -> Vec<u8> {
        (self.generate_fn)(target_bytes, seed)
    }

    /// The application's execution spec (timing constants).
    pub fn spec(&self) -> AppSpec {
        (self.spec_fn)()
    }

    /// Runs the real kernel over deserialized objects.
    pub fn kernel(&self, objects: &ParsedColumns) -> KernelResult {
        (self.kernel_fn)(objects)
    }
}

fn edge_schema() -> Schema {
    Schema::new(vec![FieldKind::U32, FieldKind::U32])
}
fn int_schema() -> Schema {
    Schema::new(vec![FieldKind::U32])
}
fn matrix_schema() -> Schema {
    Schema::new(vec![FieldKind::I32])
}
fn points4_schema() -> Schema {
    Schema::new(vec![
        FieldKind::U32,
        FieldKind::I32,
        FieldKind::I32,
        FieldKind::I32,
        FieldKind::I32,
    ])
}
fn points2_schema() -> Schema {
    Schema::new(vec![FieldKind::U32, FieldKind::I32, FieldKind::I32])
}
fn coo_schema() -> Schema {
    Schema::new(vec![FieldKind::U32, FieldKind::U32, FieldKind::F64])
}

const MB: u64 = 1_000_000;

/// The ten Table-I benchmarks, in the paper's order.
///
/// The OCR of Table I lost the BigDataBench application names and one row;
/// PageRank (3.6 GB), Sort (62 MB), and WordCount are the suite's canonical
/// integer-text MPI members (see DESIGN.md).
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "pagerank",
            suite: Suite::BigDataBench,
            parallel_label: "MPI",
            nominal_bytes: 3_600 * MB,
            schema_fn: edge_schema,
            generate_fn: edge_list_text,
            spec_fn: || AppSpec::cpu_app("pagerank", "pagerank.txt", edge_schema(), 4, 1750.0),
            kernel_fn: |o| graph::pagerank(o, 10),
        },
        Benchmark {
            name: "wordcount",
            suite: Suite::BigDataBench,
            parallel_label: "MPI",
            nominal_bytes: 620 * MB,
            schema_fn: int_schema,
            generate_fn: |b, s| int_list_text(b, s, 100_000),
            spec_fn: || AppSpec::cpu_app("wordcount", "wordcount.txt", int_schema(), 4, 950.0),
            kernel_fn: scan::wordcount,
        },
        Benchmark {
            name: "sort",
            suite: Suite::BigDataBench,
            parallel_label: "MPI",
            nominal_bytes: 62 * MB,
            schema_fn: int_schema,
            generate_fn: |b, s| int_list_text(b, s, 1_000_000),
            spec_fn: || AppSpec::cpu_app("sort", "sort.txt", int_schema(), 4, 1150.0),
            kernel_fn: |o| sort::sort(o, "sort"),
        },
        Benchmark {
            name: "bfs",
            suite: Suite::Rodinia,
            parallel_label: "CUDA",
            nominal_bytes: 2_530 * MB,
            schema_fn: edge_schema,
            generate_fn: edge_list_text,
            spec_fn: || AppSpec::gpu_app("bfs", "bfs.txt", edge_schema(), 330_000.0, 64.0, 90.0),
            kernel_fn: graph::bfs,
        },
        Benchmark {
            name: "gaussian",
            suite: Suite::Rodinia,
            parallel_label: "CUDA",
            nominal_bytes: 1_560 * MB,
            schema_fn: matrix_schema,
            generate_fn: matrix_text,
            spec_fn: || {
                AppSpec::gpu_app(
                    "gaussian",
                    "gaussian.txt",
                    matrix_schema(),
                    120_000.0,
                    48.0,
                    40.0,
                )
            },
            kernel_fn: matrix::gaussian,
        },
        Benchmark {
            name: "hybridsort",
            suite: Suite::Rodinia,
            parallel_label: "CUDA",
            nominal_bytes: 3_140 * MB,
            schema_fn: int_schema,
            generate_fn: |b, s| int_list_text(b, s, 1_000_000_000),
            spec_fn: || {
                AppSpec::gpu_app(
                    "hybridsort",
                    "hybridsort.txt",
                    int_schema(),
                    270_000.0,
                    96.0,
                    60.0,
                )
            },
            kernel_fn: |o| sort::sort(o, "hybridsort"),
        },
        Benchmark {
            name: "kmeans",
            suite: Suite::Rodinia,
            parallel_label: "CUDA",
            nominal_bytes: 1_300 * MB,
            schema_fn: points4_schema,
            generate_fn: |b, s| points_text(b, s, 4),
            spec_fn: || {
                AppSpec::gpu_app(
                    "kmeans",
                    "kmeans.txt",
                    points4_schema(),
                    700_000.0,
                    160.0,
                    150.0,
                )
            },
            kernel_fn: |o| kmeans::kmeans(o, 8, 8),
        },
        Benchmark {
            name: "lud",
            suite: Suite::Rodinia,
            parallel_label: "CUDA",
            nominal_bytes: 2_420 * MB,
            schema_fn: matrix_schema,
            generate_fn: matrix_text,
            spec_fn: || AppSpec::gpu_app("lud", "lud.txt", matrix_schema(), 110_000.0, 48.0, 40.0),
            kernel_fn: matrix::lud,
        },
        Benchmark {
            name: "nn",
            suite: Suite::Rodinia,
            parallel_label: "CUDA",
            nominal_bytes: 1_640 * MB,
            schema_fn: points2_schema,
            generate_fn: |b, s| points_text(b, s, 2),
            spec_fn: || AppSpec::gpu_app("nn", "nn.txt", points2_schema(), 380_000.0, 32.0, 60.0),
            kernel_fn: |o| nn::nearest(o, 500.0, 500.0, 5),
        },
        Benchmark {
            name: "spmv",
            suite: Suite::Standalone,
            parallel_label: "N/A",
            nominal_bytes: 110 * MB,
            schema_fn: coo_schema,
            generate_fn: sparse_coo_text,
            spec_fn: || AppSpec::cpu_app("spmv", "spmv.txt", coo_schema(), 1, 1300.0),
            kernel_fn: spmv::spmv,
        },
    ]
}

/// A completed benchmark run: the platform report plus the real kernel's
/// output.
#[derive(Debug)]
pub struct BenchOutcome {
    /// Timing/power/traffic measurements.
    pub report: RunReport,
    /// The functional kernel's result.
    pub kernel: KernelResult,
}

/// Generates and stages a benchmark's input on the system's SSD. If the
/// file is already staged (same name), this is a no-op so several modes
/// can run over one staged input.
///
/// # Errors
///
/// Propagates drive errors.
pub fn stage_input(
    sys: &mut System,
    bench: &Benchmark,
    target_bytes: u64,
    seed: u64,
) -> Result<(), SsdError> {
    if sys.fs.open(&bench.input_name()).is_ok() {
        return Ok(());
    }
    let data = generated_input(bench, target_bytes, seed);
    sys.create_input_file(&bench.input_name(), &data)
}

/// Entry cap for the generated-input memo: a sweep touches a handful of
/// (benchmark, size, seed) combinations, so the cap bounds memory rather
/// than implement eviction.
const GENERATED_CAP: usize = 64;

/// The generator output for `(bench, target_bytes, seed)`, memoized
/// process-wide: generators are pure functions of their arguments, and
/// suite sweeps stage the same input onto every fresh [`System`], so the
/// text is formatted once and shared by `Arc` thereafter.
fn generated_input(bench: &Benchmark, target_bytes: u64, seed: u64) -> Arc<Vec<u8>> {
    #[allow(clippy::type_complexity)]
    static T: OnceLock<Mutex<HashMap<(&'static str, u64, u64), Arc<Vec<u8>>>>> = OnceLock::new();
    let table = T.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (bench.name, target_bytes, seed);
    if let Some(hit) = table.lock().expect("input memo lock").get(&key) {
        return hit.clone();
    }
    // Generate outside the lock: a miss can be minutes of formatting at
    // scale 1, and parallel workers staging different benches must not
    // serialize behind each other.
    let data = Arc::new(bench.generate(target_bytes, seed));
    let mut t = table.lock().expect("input memo lock");
    if t.len() < GENERATED_CAP || t.contains_key(&key) {
        t.insert(key, data.clone());
    }
    data
}

/// Runs a staged benchmark under `mode`, then executes the real kernel on
/// the deserialized objects.
///
/// # Errors
///
/// See [`RunError`].
pub fn run_benchmark(
    sys: &mut System,
    bench: &Benchmark,
    mode: Mode,
) -> Result<BenchOutcome, RunError> {
    let outcome = sys.run(&bench.spec(), mode)?;
    let kernel = bench.kernel(&outcome.objects);
    Ok(BenchOutcome {
        report: outcome.report,
        kernel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::SystemParams;

    #[test]
    fn suite_has_ten_apps_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let mut names: Vec<_> = s.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn table_one_shape() {
        let s = suite();
        assert_eq!(
            s.iter().filter(|b| b.suite == Suite::BigDataBench).count(),
            3
        );
        assert_eq!(s.iter().filter(|b| b.suite == Suite::Rodinia).count(), 6);
        for b in &s {
            assert!(b.nominal_bytes >= 62 * MB);
            let spec = b.spec();
            assert_eq!(spec.input, b.input_name());
        }
    }

    #[test]
    fn spmv_is_the_only_float_heavy_input() {
        for b in suite() {
            let frac = b.schema().float_fraction();
            if b.name == "spmv" {
                assert!(frac > 0.3);
            } else {
                assert_eq!(frac, 0.0, "{} should be integer-only", b.name);
            }
        }
    }

    #[test]
    fn every_benchmark_runs_and_agrees_across_modes() {
        let mut sys = System::new(SystemParams::paper_testbed());
        for bench in suite() {
            stage_input(&mut sys, &bench, 48 * 1024, 11).unwrap();
            let conv = run_benchmark(&mut sys, &bench, Mode::Conventional).unwrap();
            let morp = run_benchmark(&mut sys, &bench, Mode::Morpheus).unwrap();
            assert_eq!(
                conv.kernel, morp.kernel,
                "{}: kernel results diverge across modes",
                bench.name
            );
            assert_eq!(conv.report.checksum, morp.report.checksum, "{}", bench.name);
            assert!(conv.report.records > 0, "{}", bench.name);
        }
    }

    #[test]
    fn generated_inputs_parse_against_their_schemas() {
        for bench in suite() {
            let text = bench.generate(8 * 1024, 3);
            let (p, _) = morpheus_format::parse_buffer(&text, &bench.schema())
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert!(p.records > 0, "{}", bench.name);
        }
    }
}
