//! Scan-style kernels over a token stream: word count and grep.

use crate::kernels::KernelResult;
use crate::Digest;
use morpheus_format::ParsedColumns;
use std::collections::HashMap;

/// Counts occurrences of every value (word count over integer tokens) and
/// digests the full histogram in key order.
pub fn wordcount(objects: &ParsedColumns) -> KernelResult {
    let vals = objects.columns[0]
        .as_ints()
        .expect("wordcount input is an integer column");
    let mut counts: HashMap<i64, u64> = HashMap::new();
    for v in vals {
        *counts.entry(*v).or_insert(0) += 1;
    }
    let mut keys: Vec<&i64> = counts.keys().collect();
    keys.sort_unstable();
    let mut d = Digest::new();
    let mut top = (0i64, 0u64);
    for k in keys {
        let c = counts[k];
        d.mix_i64(*k);
        d.mix(c);
        if c > top.1 {
            top = (*k, c);
        }
    }
    KernelResult {
        digest: d.value(),
        summary: format!(
            "wordcount: {} tokens, {} distinct, mode {} x{}",
            vals.len(),
            counts.len(),
            top.0,
            top.1
        ),
    }
}

/// Grep-style filter: counts values inside `[lo, hi]` and digests the
/// matching positions.
pub fn grep_range(objects: &ParsedColumns, lo: i64, hi: i64) -> KernelResult {
    let vals = objects.columns[0]
        .as_ints()
        .expect("grep input is an integer column");
    let mut d = Digest::new();
    let mut matches = 0u64;
    for (i, v) in vals.iter().enumerate() {
        if (lo..=hi).contains(v) {
            matches += 1;
            d.mix(i as u64);
        }
    }
    KernelResult {
        digest: d.value(),
        summary: format!("grep: {matches} of {} values in [{lo}, {hi}]", vals.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn ints(text: &[u8]) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::U32]);
        parse_buffer(text, &schema).unwrap().0
    }

    #[test]
    fn wordcount_finds_the_mode() {
        let p = ints(b"7\n3\n7\n7\n3\n");
        let r = wordcount(&p);
        assert!(r.summary.contains("2 distinct"));
        assert!(r.summary.contains("mode 7 x3"));
    }

    #[test]
    fn grep_counts_range_hits() {
        let p = ints(b"1\n5\n10\n15\n");
        let r = grep_range(&p, 5, 10);
        assert!(r.summary.contains("2 of 4"));
    }

    #[test]
    fn digests_differ_for_different_data() {
        let a = wordcount(&ints(b"1\n2\n"));
        let b = wordcount(&ints(b"1\n3\n"));
        assert_ne!(a.digest, b.digest);
    }
}
