//! Seeded open-loop arrival processes for serving experiments.
//!
//! Open-loop load generation (requests arrive on their own schedule, not
//! when the previous response returns) is what exposes queueing behaviour:
//! the latency-vs-throughput knee only appears when arrivals keep coming
//! while the server is busy. The process here is Poisson — independent
//! exponential gaps at a target rate — drawn from a [`SplitMix64`] stream,
//! so identical seeds produce byte-identical schedules. The serving
//! layer's determinism contract rests on that.

use crate::rng::SplitMix64;
use crate::time::SimTime;

/// An infinite, deterministic Poisson arrival stream.
///
/// Iterating yields strictly ordered arrival timestamps whose gaps are
/// exponentially distributed with mean `1 / rate`. The float accumulator
/// keeps full precision across long runs; each emitted [`SimTime`] is the
/// accumulator truncated to whole nanoseconds.
///
/// ```
/// use morpheus_simcore::ArrivalProcess;
///
/// let a: Vec<_> = ArrivalProcess::new(7, 1000.0).take(3).collect();
/// let b: Vec<_> = ArrivalProcess::new(7, 1000.0).take(3).collect();
/// assert_eq!(a, b); // same seed, same schedule
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rng: SplitMix64,
    /// Mean inter-arrival gap, nanoseconds.
    mean_gap_ns: f64,
    /// Running clock, nanoseconds (float so rounding never accumulates).
    clock_ns: f64,
}

impl ArrivalProcess {
    /// Creates a Poisson process emitting `rate_per_s` arrivals per
    /// simulated second on average, seeded like every other deterministic
    /// stream in this crate.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_s` is positive and finite.
    pub fn new(seed: u64, rate_per_s: f64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "arrival rate must be positive, got {rate_per_s}"
        );
        ArrivalProcess {
            rng: SplitMix64::new(seed),
            mean_gap_ns: 1e9 / rate_per_s,
            clock_ns: 0.0,
        }
    }
}

impl Iterator for ArrivalProcess {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        // Inverse-CDF exponential gap; `1 - u` keeps ln's argument in
        // (0, 1] since next_f64 yields [0, 1).
        let u = self.rng.next_f64();
        self.clock_ns += -(1.0 - u).ln() * self.mean_gap_ns;
        Some(SimTime::from_nanos(self.clock_ns as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a: Vec<SimTime> = ArrivalProcess::new(42, 5000.0).take(1000).collect();
        let b: Vec<SimTime> = ArrivalProcess::new(42, 5000.0).take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<SimTime> = ArrivalProcess::new(43, 5000.0).take(1000).collect();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut prev = SimTime::ZERO;
        for t in ArrivalProcess::new(9, 100_000.0).take(10_000) {
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn mean_rate_is_close_to_target() {
        let n = 50_000usize;
        let last = ArrivalProcess::new(1, 10_000.0).take(n).last().unwrap();
        let measured = n as f64 / last.as_secs_f64();
        assert!(
            (measured - 10_000.0).abs() / 10_000.0 < 0.05,
            "measured rate {measured} too far from 10000"
        );
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::new(0, 0.0);
    }
}
