//! FTL error type.

use crate::Lpn;
use morpheus_flash::FlashError;
use std::error::Error;
use std::fmt;

/// Errors returned by the FTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// Logical page beyond the exported capacity.
    OutOfCapacity(Lpn),
    /// Read of a logical page that was never written (or was trimmed).
    Unmapped(Lpn),
    /// Read failed even after the configured retries.
    MediaFailure(Lpn, FlashError),
    /// No free block could be found even after garbage collection (the
    /// drive is truly full, e.g. all spare blocks retired).
    NoFreeBlocks,
    /// The underlying flash rejected an operation the FTL believed legal —
    /// indicates an FTL bug or massive wear-out.
    Flash(FlashError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::OutOfCapacity(l) => {
                write!(f, "logical page {} beyond exported capacity", l.0)
            }
            FtlError::Unmapped(l) => write!(f, "logical page {} is unmapped", l.0),
            FtlError::MediaFailure(l, _) => {
                write!(
                    f,
                    "media failure reading logical page {} after retries",
                    l.0
                )
            }
            FtlError::NoFreeBlocks => write!(f, "no free blocks available"),
            FtlError::Flash(_) => write!(f, "flash operation rejected"),
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::MediaFailure(_, e) | FtlError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_flash::Ppa;

    #[test]
    fn messages_are_nonempty() {
        for e in [
            FtlError::OutOfCapacity(Lpn(1)),
            FtlError::Unmapped(Lpn(2)),
            FtlError::MediaFailure(Lpn(3), FlashError::Uncorrectable(Ppa(4))),
            FtlError::NoFreeBlocks,
            FtlError::Flash(FlashError::OutOfRange(Ppa(5))),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn display_does_not_embed_source() {
        // The cause is reported via `source()`, not duplicated in Display,
        // so chain renderers print each cause exactly once.
        let e = FtlError::MediaFailure(Lpn(3), FlashError::Uncorrectable(Ppa(4)));
        let root = Error::source(&e).unwrap().to_string();
        assert!(!e.to_string().contains(&root));
    }

    #[test]
    fn source_chains_flash_errors() {
        let e = FtlError::MediaFailure(Lpn(0), FlashError::Uncorrectable(Ppa(0)));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&FtlError::NoFreeBlocks).is_none());
    }
}
