//! Text Gantt charts from recorded timelines.
//!
//! With [`Timeline::with_recording`] enabled, a run's intervals can be
//! rendered as an ASCII occupancy chart — handy for eyeballing how flash
//! reads, in-SSD parsing, and DMA overlap in the Morpheus pipeline.

use crate::{SimTime, Timeline};
use std::fmt::Write as _;

/// Renders one row per timeline *unit* over `[0, end]`, `width` columns
/// wide. Busy cells print `█`, half-covered cells `▒`, idle `·`.
///
/// Timelines recorded with [`Timeline::with_recording`] contribute their
/// intervals; zero-duration intervals still mark their cell with `▒`. A
/// busy timeline that was never recording renders as an `(unrecorded)`
/// note, while a recording timeline with no activity renders as `(idle)`.
///
/// # Panics
///
/// Panics if `width` is zero.
///
/// # Example
///
/// ```
/// use morpheus_simcore::{render_gantt, SimDuration, SimTime, Timeline};
///
/// let mut t = Timeline::new("bus", 1).with_recording();
/// t.acquire(SimTime::ZERO, SimDuration::from_nanos(50));
/// let chart = render_gantt(&[("bus", &t)], SimTime::from_nanos(100), 10);
/// assert!(chart.contains("█████·····"));
/// ```
pub fn render_gantt(lanes: &[(&str, &Timeline)], end: SimTime, width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let span = end.as_nanos().max(1) as f64;
    let label_w = lanes
        .iter()
        .map(|(n, t)| n.len() + if t.units() > 1 { 3 } else { 0 })
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:label_w$} 0{:…>width$} {}",
        "lane",
        "",
        end,
        label_w = label_w,
        width = width.saturating_sub(1)
    );
    for (name, t) in lanes {
        if !t.is_recording() && !t.busy().is_zero() {
            let _ = writeln!(out, "{name:label_w$} (unrecorded)");
            continue;
        }
        if t.is_recording() && t.intervals().is_empty() {
            let _ = writeln!(out, "{name:label_w$} (idle)");
            continue;
        }
        for unit in 0..t.units() {
            // Coverage per column in [0, 1].
            let mut cover = vec![0.0f64; width];
            for iv in t.intervals().iter().filter(|iv| iv.unit == unit) {
                let s = iv.start.as_nanos() as f64 / span * width as f64;
                let e = iv.end.as_nanos() as f64 / span * width as f64;
                if iv.start == iv.end {
                    // A zero-duration interval still marks its cell.
                    let c = (s.floor() as usize).min(width - 1);
                    cover[c] = cover[c].max(0.25);
                    continue;
                }
                let lo = s.floor() as usize;
                let hi = (e.ceil() as usize).min(width);
                for (c, slot) in cover.iter_mut().enumerate().take(hi).skip(lo) {
                    let cell_lo = c as f64;
                    let cell_hi = c as f64 + 1.0;
                    let overlap = (e.min(cell_hi) - s.max(cell_lo)).max(0.0);
                    *slot += overlap;
                }
            }
            let row: String = cover
                .iter()
                .map(|c| {
                    if *c >= 0.75 {
                        '█'
                    } else if *c >= 0.25 {
                        '▒'
                    } else {
                        '·'
                    }
                })
                .collect();
            let label = if t.units() > 1 {
                format!("{name}/{unit}")
            } else {
                (*name).to_string()
            };
            let _ = writeln!(out, "{label:label_w$} {row}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn busy_and_idle_cells_render() {
        let mut t = Timeline::new("t", 1).with_recording();
        t.acquire(SimTime::ZERO, SimDuration::from_nanos(25));
        t.acquire(SimTime::from_nanos(75), SimDuration::from_nanos(25));
        let chart = render_gantt(&[("t", &t)], SimTime::from_nanos(100), 20);
        let row = chart.lines().nth(1).unwrap();
        assert!(row.contains("█████"), "{chart}");
        assert!(row.contains("·····"), "{chart}");
    }

    #[test]
    fn multi_unit_timelines_get_one_row_each() {
        let mut t = Timeline::new("cores", 3).with_recording();
        t.acquire(SimTime::ZERO, SimDuration::from_nanos(10));
        let chart = render_gantt(&[("cores", &t)], SimTime::from_nanos(10), 8);
        assert!(chart.contains("cores/0"));
        assert!(chart.contains("cores/2"));
        assert_eq!(chart.lines().count(), 1 + 3);
    }

    #[test]
    fn unrecorded_busy_timelines_flagged() {
        let mut t = Timeline::new("t", 1); // recording off
        t.acquire(SimTime::ZERO, SimDuration::from_nanos(10));
        let chart = render_gantt(&[("t", &t)], SimTime::from_nanos(10), 8);
        assert!(chart.contains("(unrecorded)"));
    }

    #[test]
    fn partial_coverage_uses_half_shade() {
        let mut t = Timeline::new("t", 1).with_recording();
        // 5ns of a 10ns-wide cell (width 10 over 100ns).
        t.acquire(SimTime::from_nanos(2), SimDuration::from_nanos(5));
        let chart = render_gantt(&[("t", &t)], SimTime::from_nanos(100), 10);
        assert!(chart.lines().nth(1).unwrap().contains('▒'), "{chart}");
    }

    #[test]
    fn zero_duration_interval_marks_its_cell() {
        let mut t = Timeline::new("t", 1).with_recording();
        t.acquire(SimTime::from_nanos(55), SimDuration::ZERO);
        let chart = render_gantt(&[("t", &t)], SimTime::from_nanos(100), 10);
        let row = chart.lines().nth(1).unwrap();
        assert_eq!(
            row.trim_start_matches(|c| c != ' ').trim(),
            "·····▒····",
            "{chart}"
        );
    }

    #[test]
    fn zero_duration_at_horizon_stays_in_range() {
        let mut t = Timeline::new("t", 1).with_recording();
        t.acquire(SimTime::from_nanos(100), SimDuration::ZERO);
        let chart = render_gantt(&[("t", &t)], SimTime::from_nanos(100), 10);
        assert!(chart.lines().nth(1).unwrap().ends_with('▒'), "{chart}");
    }

    #[test]
    fn idle_recorded_lane_distinct_from_unrecorded() {
        let idle = Timeline::new("idle", 1).with_recording();
        let mut unrec = Timeline::new("unrec", 1); // recording off
        unrec.acquire(SimTime::ZERO, SimDuration::from_nanos(10));
        let chart = render_gantt(
            &[("idle", &idle), ("unrec", &unrec)],
            SimTime::from_nanos(10),
            8,
        );
        assert!(chart.contains("idle  (idle)"), "{chart}");
        assert!(chart.contains("unrec (unrecorded)"), "{chart}");
    }

    #[test]
    fn untouched_unrecorded_lane_renders_idle_row() {
        // Never-recording, never-busy: nothing to flag, show an idle row.
        let t = Timeline::new("t", 1);
        let chart = render_gantt(&[("t", &t)], SimTime::from_nanos(10), 8);
        assert!(
            chart.lines().nth(1).unwrap().contains("········"),
            "{chart}"
        );
    }

    #[test]
    fn multi_unit_rows_cover_their_own_intervals() {
        let mut t = Timeline::new("cores", 2).with_recording();
        t.acquire(SimTime::ZERO, SimDuration::from_nanos(10)); // unit 0
        t.acquire(SimTime::ZERO, SimDuration::from_nanos(5)); // unit 1
        let chart = render_gantt(&[("cores", &t)], SimTime::from_nanos(10), 10);
        let row0 = chart.lines().nth(1).unwrap();
        let row1 = chart.lines().nth(2).unwrap();
        assert!(row0.starts_with("cores/0"), "{chart}");
        assert!(row0.contains("██████████"), "{chart}");
        assert!(row1.starts_with("cores/1"), "{chart}");
        assert!(row1.contains("█████·····"), "{chart}");
    }
}
