//! CLI contract of the telemetry plane: strict flag grammar (exit 2 on
//! any unknown flag or malformed value) for the `telemetry` binary and
//! the `serve` binary's telemetry flags, Prometheus text-exposition
//! grammar through the CLI, and byte-identical output across repeats
//! and `--jobs` fan-outs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn telemetry_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_telemetry"))
        .args(args)
        .env_remove("MORPHEUS_JOBS")
        .output()
        .expect("launch telemetry binary")
}

fn serve_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(args)
        .env_remove("MORPHEUS_JOBS")
        .output()
        .expect("launch serve binary")
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "morpheus-telemetry-test-{}-{name}",
        std::process::id()
    ));
    p
}

/// A small, fast cell exercised by most tests below.
const QUICK: &[&str] = &["--rps", "2000", "--duration", "0.02", "--bytes", "4096"];

#[test]
fn telemetry_bad_flags_exit_two_with_usage() {
    for bad in [
        vec!["--sacle", "64"],
        vec!["--rps", "0"],
        vec!["--window", "0ms"],
        vec!["--window", "soon"],
        vec!["--window"],
        vec!["--slo", "p99<"],
        vec!["--slo", "avail>100"],
        vec!["--format", "json"],
        vec!["--mode", "all"],
        vec!["--jobs", "4"],
        vec!["--faults", "bogus"],
    ] {
        let out = telemetry_bin(&bad);
        assert_eq!(
            out.status.code(),
            Some(2),
            "telemetry {bad:?} should exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("usage:"),
            "telemetry {bad:?} stderr: {stderr}"
        );
    }
}

#[test]
fn serve_telemetry_flags_exit_two_when_misused() {
    for bad in [
        vec!["--telemetry-window", "0ms"],
        vec!["--telemetry-window", "whenever"],
        vec!["--telemetry-window"],
        vec!["--slo", "avail>99.9"],      // requires --telemetry-window
        vec!["--telemetry-out", "t.csv"], // requires --telemetry-window
        vec!["--prom-out", "t.prom"],     // requires --telemetry-window
        vec!["--telemetry-window", "10ms", "--slo", "p101<5us"],
        // --prom-out over a multi-cell sweep: one exposition per metric.
        vec!["--telemetry-window", "10ms", "--prom-out", "t.prom"],
    ] {
        let out = serve_bin(&bad);
        assert_eq!(
            out.status.code(),
            Some(2),
            "serve {bad:?} should exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "serve {bad:?} stderr: {stderr}");
    }
}

#[test]
fn text_mode_renders_sparklines_and_slo_verdicts() {
    let mut args = QUICK.to_vec();
    args.extend_from_slice(&["--slo", "p99<500us,avail>99.9"]);
    let out = telemetry_bin(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("telemetry windows="), "{stdout}");
    assert!(stdout.contains("rps"), "{stdout}");
    assert!(
        stdout.contains("slo p99<500us") && stdout.contains("slo avail>99.9"),
        "one verdict line per objective: {stdout}"
    );
    assert!(
        stdout.contains("MET") || stdout.contains("VIOLATED"),
        "verdicts rendered: {stdout}"
    );
}

#[test]
fn prometheus_exposition_is_well_formed_through_the_cli() {
    let mut args = QUICK.to_vec();
    args.extend_from_slice(&["--format", "prom", "--slo", "avail>99.9"]);
    let out = telemetry_bin(&args);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8");
    // Every metric family is announced before its samples.
    let mut seen_help = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap().to_string();
            assert!(seen_help.insert(name), "duplicate HELP: {line}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap();
            assert!(
                seen_help.contains(name),
                "TYPE before HELP for {name}: {line}"
            );
            let kind = it.next().unwrap();
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind}"
            );
        } else if !line.is_empty() {
            // Sample lines: name{labels} value [timestamp]
            let name_end = line.find(['{', ' ']).unwrap();
            assert!(
                line[..name_end]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line}"
            );
        }
    }
    // Counters carry the _total suffix; histograms end cumulatively +Inf.
    assert!(text.contains("morpheus_offered_total"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");
    // Histogram buckets are cumulative: +Inf equals _count.
    let count_line = text
        .lines()
        .find(|l| l.starts_with("morpheus_e2e_ns_count"))
        .expect("histogram _count");
    let count_val = count_line.split_whitespace().last().unwrap();
    let inf_line = text
        .lines()
        .rfind(|l| l.starts_with("morpheus_e2e_ns_bucket") && l.contains("le=\"+Inf\""))
        .expect("+Inf bucket");
    assert_eq!(inf_line.split_whitespace().last().unwrap(), count_val);
    // SLO series carry the objective as a label.
    assert!(text.contains("slo=\"avail>99.9\""), "{text}");
}

#[test]
fn telemetry_output_is_byte_identical_across_repeats() {
    for format in ["text", "csv", "prom"] {
        let mut args = QUICK.to_vec();
        args.extend_from_slice(&[
            "--format",
            format,
            "--slo",
            "p99<500us,avail>99.9",
            "--skew",
            "1.1",
            "--cache-mb",
            "64",
            "--faults",
            "seed=9,crash=0.05,stall=0.05,timeout=0.02",
            "--seed",
            "7",
        ]);
        let a = telemetry_bin(&args);
        let b = telemetry_bin(&args);
        assert!(a.status.success() && b.status.success());
        assert!(!a.stdout.is_empty());
        assert_eq!(a.stdout, b.stdout, "--format {format} not deterministic");
    }
}

#[test]
fn serve_telemetry_artifacts_are_byte_identical_across_jobs() {
    let run = |jobs: &str, tag: &str| -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let csv = tmp_path(&format!("sweep-{tag}.csv"));
        let out = serve_bin(&[
            "--mode",
            "morpheus",
            "--rps",
            "1000,4000",
            "--duration",
            "0.02",
            "--bytes",
            "4096",
            "--skew",
            "1.1",
            "--telemetry-window",
            "10ms",
            "--slo",
            "p99<500us,avail>99.9",
            "--telemetry-out",
            csv.to_str().unwrap(),
            "--faults",
            "seed=9,crash=0.05,stall=0.05,timeout=0.02",
            "--seed",
            "7",
            "--jobs",
            jobs,
        ]);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let data = std::fs::read(&csv).expect("telemetry CSV written");
        std::fs::remove_file(&csv).ok();
        // Drop the "wrote ..." path lines: the paths differ by tag.
        let stdout = String::from_utf8(out.stdout).expect("utf-8");
        let filtered: String = stdout
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n");
        (filtered.into_bytes(), data, out.stderr)
    };
    let (s1, c1, _) = run("1", "j1");
    let (s4, c4, _) = run("4", "j4");
    assert!(!c1.is_empty(), "telemetry CSV is empty");
    assert_eq!(c1, c4, "telemetry CSV differs across --jobs");
    assert_eq!(s1, s4, "serve stdout differs across --jobs");
    // The sweep CSV has one header block per cell, prefixed with the
    // cell's coordinates.
    let text = String::from_utf8(c1).unwrap();
    assert_eq!(
        text.lines()
            .filter(|l| l.starts_with("mode,target_rps,window,start_ms"))
            .count(),
        2,
        "one header per cell: {text}"
    );
    assert!(text.contains("morpheus,1000,"), "{text}");
    assert!(text.contains("morpheus,4000,"), "{text}");
}

#[test]
fn serve_with_telemetry_off_matches_historical_output() {
    // The zero-cost contract at the CLI boundary: not passing any
    // telemetry flag must produce output with no telemetry artifacts.
    let out = serve_bin(&[
        "--mode",
        "morpheus",
        "--rps",
        "1000",
        "--duration",
        "0.02",
        "--bytes",
        "4096",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("telemetry"),
        "telemetry leaked into a disabled run: {stdout}"
    );
}

#[test]
fn fault_plan_error_budget_is_pinned() {
    // The seeded fault plan burns a deterministic amount of error budget;
    // CI asserts this exact value, so a drift in the serving plane, the
    // fault engine, or the SLO math shows up as a diff here first.
    let mut args = QUICK.to_vec();
    args.extend_from_slice(&[
        "--slo",
        "avail>99",
        "--policy",
        "shed",
        "--depth",
        "8",
        "--faults",
        "seed=9,crash=0.2,stall=0.1",
        "--seed",
        "7",
    ]);
    let a = telemetry_bin(&args);
    assert!(a.status.success());
    let text = String::from_utf8(a.stdout).unwrap();
    let budget_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("slo avail>99"))
        .expect("availability verdict line")
        .to_string();
    let b = telemetry_bin(&args);
    assert_eq!(
        text,
        String::from_utf8(b.stdout).unwrap(),
        "budget line must be reproducible: {budget_line}"
    );
}
