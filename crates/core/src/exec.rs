//! Application execution drivers for the three modes.
//!
//! Each driver runs the *same* functional deserialization (bytes out of the
//! simulated flash, through the shared parser, into [`ParsedColumns`]) but
//! prices it on a different engine:
//!
//! * [`Mode::Conventional`] — Fig. 1: raw text DMAs to a host buffer, the
//!   host CPU runs the `read()`+parse loop (with all its OS overhead and
//!   context switches), objects are stored back to DRAM.
//! * [`Mode::Morpheus`] — Fig. 4: a [`DeserializeApp`] runs on the SSD's
//!   embedded cores behind MINIT/MREAD/MDEINIT; only finished binary
//!   objects cross the interconnect; the host merely takes one completion
//!   interrupt per chunk.
//! * [`Mode::MorpheusP2P`] — same, but MREAD results DMA straight into GPU
//!   memory through the BAR NVMe-P2P mapped.

use crate::report::{Mode, Phases, RunReport};
use crate::system::ChunkIo;
use crate::{BinaryDeserializeApp, DeserializeApp, MorpheusError, StorageApp, StorageKind, System};
use morpheus_format::{
    BinaryStreamParser, Endianness, ParseError, ParseWork, ParsedColumns, Schema, StreamingParser,
};
use morpheus_gpu::KernelCost;
use morpheus_host::CodeClass;
use morpheus_nvme::{MorpheusCommand, NvmeCommand, StatusCode};
use morpheus_pcie::{DmaDir, PcieError};
use morpheus_simcore::{
    FaultCounters, Metrics, SimDuration, SimTime, TelemetryReport, TraceLayer, TraceLog,
};
use morpheus_ssd::SsdError;
use std::error::Error;
use std::fmt;

/// Trace track for the host-visible NVMe I/O queue pair (queue id 1).
const NVME_TRACK: &str = "ioq1";
/// Trace track for OS scheduler events (syscalls, context switches).
const OS_TRACK: &str = "os";

/// How the compute kernel parallelizes (Table I's "parallel model").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelModel {
    /// MPI-style multi-threaded CPU kernel.
    CpuThreads(u32),
    /// CUDA kernel on the discrete GPU.
    GpuCuda,
}

/// How a staged input file is encoded (§I's "other input formats").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// Whitespace/comma-separated decimal text (the paper's focus).
    Text,
    /// Packed binary records at the given byte order.
    Binary(Endianness),
}

/// Per-record GPU kernel demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuKernelPerRecord {
    /// ALU operations per record.
    pub flops: f64,
    /// Device-memory bytes per record.
    pub bytes: f64,
}

/// A benchmark application: its input, deserialization schema, and kernel
/// cost model. The *functional* kernel lives in `morpheus-workloads`; these
/// constants drive the timing model only.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Input file (created with [`System::create_input_file`]).
    pub input: String,
    /// Record schema of the input.
    pub schema: Schema,
    /// Kernel parallel model.
    pub parallel: ParallelModel,
    /// CPU kernel instructions per record (for [`ParallelModel::CpuThreads`]).
    pub kernel_cpu_instr_per_record: f64,
    /// GPU kernel demands (required for [`ParallelModel::GpuCuda`]).
    pub gpu_kernel: Option<GpuKernelPerRecord>,
    /// Host-side setup/partitioning instructions per record.
    pub other_cpu_instr_per_record: f64,
    /// Encoding of the input file.
    pub input_format: InputFormat,
}

impl AppSpec {
    /// A CPU (MPI-style) application.
    pub fn cpu_app(
        name: &str,
        input: &str,
        schema: Schema,
        threads: u32,
        kernel_instr_per_record: f64,
    ) -> Self {
        AppSpec {
            name: name.to_string(),
            input: input.to_string(),
            schema,
            parallel: ParallelModel::CpuThreads(threads.max(1)),
            kernel_cpu_instr_per_record: kernel_instr_per_record,
            gpu_kernel: None,
            other_cpu_instr_per_record: kernel_instr_per_record * 0.15,
            input_format: InputFormat::Text,
        }
    }

    /// A CUDA application.
    pub fn gpu_app(
        name: &str,
        input: &str,
        schema: Schema,
        flops_per_record: f64,
        bytes_per_record: f64,
        other_cpu_instr_per_record: f64,
    ) -> Self {
        AppSpec {
            name: name.to_string(),
            input: input.to_string(),
            schema,
            parallel: ParallelModel::GpuCuda,
            kernel_cpu_instr_per_record: 0.0,
            gpu_kernel: Some(GpuKernelPerRecord {
                flops: flops_per_record,
                bytes: bytes_per_record,
            }),
            other_cpu_instr_per_record,
            input_format: InputFormat::Text,
        }
    }

    /// Switches the spec to a differently encoded input file.
    pub fn with_input_format(mut self, format: InputFormat) -> Self {
        self.input_format = format;
        self
    }
}

/// Host-side parser dispatch over the input encoding.
enum HostParser {
    Text(StreamingParser),
    Binary(BinaryStreamParser),
}

impl HostParser {
    fn new(schema: &Schema, format: InputFormat) -> HostParser {
        match format {
            InputFormat::Text => HostParser::Text(StreamingParser::new(schema.clone())),
            InputFormat::Binary(e) => {
                HostParser::Binary(BinaryStreamParser::new(schema.clone(), e))
            }
        }
    }

    fn feed(&mut self, chunk: &[u8]) -> Result<(), ParseError> {
        match self {
            HostParser::Text(p) => p.feed(chunk),
            HostParser::Binary(p) => p.feed(chunk),
        }
    }

    fn work(&self) -> ParseWork {
        match self {
            HostParser::Text(p) => p.work(),
            HostParser::Binary(p) => p.work(),
        }
    }

    fn finish(self) -> Result<ParsedColumns, ParseError> {
        match self {
            HostParser::Text(p) => p.finish(),
            HostParser::Binary(p) => p.finish(),
        }
    }
}

/// Errors from a run.
#[derive(Debug)]
pub enum RunError {
    /// The input file was never created.
    UnknownFile(String),
    /// The input text did not parse.
    Parse(ParseError),
    /// The Morpheus firmware rejected a command.
    Morpheus(MorpheusError),
    /// The drive failed.
    Ssd(SsdError),
    /// The PCIe fabric rejected a DMA.
    Pcie(PcieError),
    /// Host DRAM exhausted.
    OutOfHostMemory,
    /// GPU memory exhausted.
    OutOfGpuMemory,
    /// P2P mode needs a GPU application.
    NotGpuApp(String),
    /// A GPU app spec without a GPU kernel cost.
    MissingGpuKernel(String),
    /// An injected NVMe command loss exhausted the host's reissue budget
    /// on a path with no further fallback.
    CommandTimeout {
        /// Total attempts made (the original issue plus every reissue).
        attempts: u32,
    },
    /// A multi-tenant or serving entry point was handed no work at all.
    NoTenants,
    /// Fleet routing found no live device for a request: the placement
    /// target was already killed at admission time and every rebalance
    /// candidate was dead too ([`crate::fleet::DeviceDown`] carries the
    /// devices and times).
    DeviceDown(crate::fleet::DeviceDown),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownFile(n) => write!(f, "input file {n:?} was never created"),
            RunError::Parse(_) => write!(f, "input parse failure"),
            RunError::Morpheus(_) => write!(f, "morpheus firmware error"),
            RunError::Ssd(_) => write!(f, "drive error"),
            RunError::Pcie(_) => write!(f, "fabric error"),
            RunError::OutOfHostMemory => write!(f, "host dram exhausted"),
            RunError::OutOfGpuMemory => write!(f, "gpu memory exhausted"),
            RunError::NotGpuApp(n) => write!(f, "p2p mode requires a gpu app, {n:?} is not"),
            RunError::MissingGpuKernel(n) => {
                write!(f, "gpu app {n:?} has no gpu kernel cost")
            }
            RunError::CommandTimeout { attempts } => {
                write!(f, "nvme command timed out after {attempts} attempts")
            }
            RunError::NoTenants => write!(f, "no tenants: the request list is empty"),
            RunError::DeviceDown(_) => write!(f, "fleet routing failed: no healthy device"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Parse(e) => Some(e),
            RunError::Morpheus(e) => Some(e),
            RunError::Ssd(e) => Some(e),
            RunError::Pcie(e) => Some(e),
            RunError::DeviceDown(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for RunError {
    fn from(e: ParseError) -> Self {
        RunError::Parse(e)
    }
}
impl From<MorpheusError> for RunError {
    fn from(e: MorpheusError) -> Self {
        RunError::Morpheus(e)
    }
}
impl From<SsdError> for RunError {
    fn from(e: SsdError) -> Self {
        RunError::Ssd(e)
    }
}
impl From<PcieError> for RunError {
    fn from(e: PcieError) -> Self {
        RunError::Pcie(e)
    }
}

/// A completed run: the measurements and the actual application objects.
#[derive(Debug)]
pub struct RunOutcome {
    /// All measurements.
    pub report: RunReport,
    /// The deserialized objects (bit-identical across modes).
    pub objects: ParsedColumns,
}

/// Internal summary of the deserialization window.
struct DeserWindow {
    end: SimTime,
    cpu_busy: SimDuration,
    text_bytes: u64,
    /// Host address of the object region (0 when objects live on the GPU).
    obj_addr: u64,
    /// True when a Morpheus-mode run degraded to host deserialization:
    /// the objects ended up in host DRAM, so a P2P run still owes the
    /// host-to-GPU copy.
    fell_back: bool,
}

/// Why a Morpheus-mode attempt was abandoned.
enum MorpheusAbort {
    /// Unrecoverable: surface the error to the caller.
    Fatal(RunError),
    /// Recoverable by degrading to host-side deserialization.
    Fallback {
        /// Simulated time the failure was detected (fallback starts here).
        at: SimTime,
        /// Instance to reap (may never have been created).
        iid: u32,
        /// NVMe status the driver posts for the failed command.
        status: StatusCode,
        /// Rendered cause chain, for the report and logs.
        cause: String,
    },
}

impl From<RunError> for MorpheusAbort {
    fn from(e: RunError) -> Self {
        MorpheusAbort::Fatal(e)
    }
}

impl System {
    /// Executes an application under the given mode.
    ///
    /// Timing state is reset first ([`System::reset_timing`]); staged files
    /// persist, so the same input serves all modes.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run(&mut self, spec: &AppSpec, mode: Mode) -> Result<RunOutcome, RunError> {
        if matches!(spec.parallel, ParallelModel::GpuCuda) && spec.gpu_kernel.is_none() {
            return Err(RunError::MissingGpuKernel(spec.name.clone()));
        }
        self.reset_timing();
        // Bookmark the trace so suite telemetry folds only this run's
        // events: the log accumulates across runs while run clocks restart
        // at zero, and mixing runs would double-count every window.
        self.telemetry_mark = self.tracer.recorded();
        match mode {
            Mode::Conventional => self.run_conventional(spec),
            Mode::Morpheus => self.run_morpheus(spec, false),
            Mode::MorpheusP2P => {
                if !matches!(spec.parallel, ParallelModel::GpuCuda) {
                    return Err(RunError::NotGpuApp(spec.name.clone()));
                }
                self.run_morpheus(spec, true)
            }
        }
    }

    fn run_conventional(&mut self, spec: &AppSpec) -> Result<RunOutcome, RunError> {
        let meta = self
            .fs
            .open(&spec.input)
            .map_err(|_| RunError::UnknownFile(spec.input.clone()))?
            .clone();
        let (objects, window) = self.host_deser_window(spec, &meta, SimTime::ZERO)?;
        self.finish_run(spec, Mode::Conventional, objects, window)
    }

    /// The host-side `read()`+parse loop of Fig. 1, shared by the
    /// conventional mode and the Morpheus fallback path: deserializes the
    /// whole file starting no earlier than `start`, allocates the object
    /// region, and returns the objects with the window summary.
    fn host_deser_window(
        &mut self,
        spec: &AppSpec,
        meta: &morpheus_host::FileMeta,
        start: SimTime,
    ) -> Result<(ParsedColumns, DeserWindow), RunError> {
        let chunks = Self::file_chunks(meta, self.params.conventional_chunk_bytes);
        // Record/replay of the parse work (see `deser_memo`): storage I/O,
        // OS costs, and CPU-core grants always run live against this run's
        // timelines; only the parser itself is skipped when a recording
        // for this exact content and chunking exists. The recorded values
        // (per-chunk work deltas, canonical objects) are pure functions of
        // the key, so replayed runs are byte-identical to live ones.
        let memo_key = self.host_memo_key(spec, &chunks);
        let replay = memo_key.and_then(crate::deser_memo::host_get);
        if let Some(r) = &replay {
            assert_eq!(
                r.per_chunk.len(),
                chunks.len(),
                "deser-memo chunk-count mismatch (key collision?)"
            );
        }
        let mut parser = match replay {
            None => Some(HostParser::new(&spec.schema, spec.input_format)),
            Some(_) => None,
        };
        let mut recorded: Vec<ParseWork> = Vec::new();
        // Buffer X of Fig. 1(b): the raw-text landing buffer.
        let buf_addr = self
            .dram
            .alloc(self.params.conventional_chunk_bytes)
            .ok_or(RunError::OutOfHostMemory)?;
        let mut last_work = ParseWork::default();
        let mut cpu_ready = start;
        let mut cpu_busy = SimDuration::ZERO;
        // QD-1 blocking reads: the next command is submitted when the
        // previous one's data has landed (traced as the NVMe lifecycle).
        let mut submit = start;
        for (ci, c) in chunks.iter().enumerate() {
            let cid = self.alloc_cid();
            // The injected-timeout floor: `start` when the command went
            // out untouched, later when reissues pushed it back. On this
            // path there is nothing left to fall back to, so an exhausted
            // reissue budget is a clean run failure.
            let floor = if matches!(self.params.storage, StorageKind::NvmeSsd) {
                self.issue_with_timeouts(submit, start)
                    .map_err(|(_, attempts)| RunError::CommandTimeout { attempts })?
            } else {
                start
            };
            let (text, io_done) = self.conventional_io(c, cid, buf_addr, floor)?;
            if matches!(self.params.storage, StorageKind::NvmeSsd) {
                self.tracer.span_bytes(
                    TraceLayer::Nvme,
                    NVME_TRACK,
                    "READ",
                    submit,
                    io_done,
                    c.valid_bytes,
                );
                self.nvme_lat
                    .record(io_done.duration_since(submit).as_nanos());
                submit = io_done;
            }
            let dw = match &replay {
                Some(r) => r.per_chunk[ci],
                None => {
                    let p = parser.as_mut().expect("live path has a parser");
                    p.feed(&text[..c.valid_bytes as usize])?;
                    let w = p.work();
                    let dw = work_delta(&w, &last_work);
                    last_work = w;
                    if memo_key.is_some() {
                        recorded.push(dw);
                    }
                    dw
                }
            };
            let os_cost = self.os.buffered_read(c.valid_bytes);
            let os_t = self.cpu.duration(os_cost.instructions, CodeClass::OsKernel);
            let parse_t = self.cpu.duration(
                self.params.host_cost.int_path_instructions(&dw)
                    + self.params.host_cost.float_path_instructions(&dw),
                CodeClass::Deserialize,
            );
            let iv = self
                .cpu_cores
                .acquire(io_done.max(cpu_ready), os_t + parse_t);
            self.tracer
                .instant(TraceLayer::Host, OS_TRACK, "context-switch", iv.start);
            self.tracer.span_bytes(
                TraceLayer::Host,
                self.cpu_cores.name(),
                "read+parse",
                iv.start,
                iv.end,
                c.valid_bytes,
            );
            cpu_ready = iv.end;
            cpu_busy += iv.duration();
            // The parse loop streams the text back out of DRAM.
            self.membus.account(c.valid_bytes);
        }
        let objects = match replay {
            Some(r) => r.objects.clone(),
            None => {
                let mut o = parser.take().expect("live path has a parser").finish()?;
                o.canonicalize();
                if let Some(key) = memo_key {
                    crate::deser_memo::host_put(
                        key,
                        std::sync::Arc::new(crate::deser_memo::HostReplay {
                            per_chunk: recorded,
                            objects: o.clone(),
                        }),
                    );
                }
                o
            }
        };
        let obj_bytes = objects.binary_bytes();
        // Location Y of Fig. 1(b): the object arrays.
        let obj_addr = self
            .dram
            .alloc(obj_bytes.max(1))
            .ok_or(RunError::OutOfHostMemory)?;
        self.membus.account(obj_bytes);
        let window = DeserWindow {
            end: cpu_ready,
            cpu_busy,
            text_bytes: meta.len,
            obj_addr,
            fell_back: false,
        };
        Ok((objects, window))
    }

    /// One conventional-path input chunk on the configured storage device,
    /// served no earlier than `ready`.
    fn conventional_io(
        &mut self,
        c: &ChunkIo,
        cid: u16,
        buf_addr: u64,
        ready: SimTime,
    ) -> Result<(Vec<u8>, SimTime), RunError> {
        match self.params.storage {
            StorageKind::NvmeSsd => {
                let cmd = NvmeCommand::read(cid, 1, c.slba, c.blocks, buf_addr);
                self.round_trip(cmd, StatusCode::Success, 0);
                let (data, t) = self.mssd.dev.read_range(c.slba, c.blocks, ready)?;
                let dma =
                    self.fabric
                        .dma(self.ssd_dev, DmaDir::Write, buf_addr, c.valid_bytes, t)?;
                let mb = self.membus.transfer(dma.start, c.valid_bytes);
                Ok((data, dma.end.max(mb.end)))
            }
            StorageKind::RamDrive => {
                let data = self.mssd.dev.read_range_untimed(c.slba, c.blocks)?;
                let mb = self.membus.transfer(ready, c.valid_bytes);
                Ok((data, mb.end))
            }
            StorageKind::Hdd => {
                let data = self.mssd.dev.read_range_untimed(c.slba, c.blocks)?;
                let seek = SimDuration::from_secs_f64(self.params.hdd_seek_ms / 1e3);
                let stream =
                    SimDuration::from_secs_f64(c.valid_bytes as f64 / (self.params.hdd_mbs * 1e6));
                let iv = self.hdd.acquire(ready, seek + stream);
                let mb = self.membus.transfer(iv.start, c.valid_bytes);
                Ok((data, iv.end.max(mb.end)))
            }
        }
    }

    /// Rolls the NVMe command-loss dice for one submission at `submit`.
    ///
    /// Returns the device-ready floor for the command: `base` when it went
    /// through untouched (preserving the fault-free schedule exactly), or
    /// the final reissue time when injected losses pushed it back. A lost
    /// command never reached the device, so reissuing it is always safe.
    /// `Err((at, n))` means the reissue budget was spent after `n` total
    /// attempts, with the last loss detected at `at`.
    pub(crate) fn issue_with_timeouts(
        &mut self,
        submit: SimTime,
        base: SimTime,
    ) -> Result<SimTime, (SimTime, u32)> {
        let Some(fi) = self.faults.as_mut() else {
            return Ok(base);
        };
        if fi.plan.nvme_timeout <= 0.0 {
            return Ok(base);
        }
        // Clone the handle only once a fault plan is actually armed: the
        // fault-free hot path exits above without touching the Arc.
        let tracer = self.tracer.clone();
        let window = fi.plan.timeout_window();
        let mut t = submit;
        let mut attempt = 0u32;
        loop {
            if !fi.timeout.roll() {
                return Ok(if attempt == 0 { base } else { t.max(base) });
            }
            fi.counters.nvme_timeouts += 1;
            let detect = t + window;
            tracer.instant(TraceLayer::Nvme, NVME_TRACK, "nvme-timeout", detect);
            if attempt >= fi.plan.nvme_max_retries {
                return Err((detect, attempt + 1));
            }
            fi.counters.nvme_retries += 1;
            t = detect + fi.plan.backoff(attempt);
            attempt += 1;
        }
    }

    /// Rolls the embedded-core stall dice for a Morpheus command about to
    /// dispatch at `ready`; a hit delays it by the plan's stall duration.
    pub(crate) fn inject_core_stall(&mut self, ready: SimTime) -> SimTime {
        let Some(fi) = self.faults.as_mut() else {
            return ready;
        };
        if fi.plan.core_stall <= 0.0 || !fi.stall.roll() {
            return ready;
        }
        fi.counters.core_stalls += 1;
        let stall = fi.plan.stall_duration();
        self.tracer
            .instant(TraceLayer::Ssd, "faults", "core-stall", ready);
        ready + stall
    }

    /// Rolls the embedded-core crash dice for a Morpheus command at `at`;
    /// `Some(at)` means the core crashed and the instance is lost.
    pub(crate) fn inject_core_crash(&mut self, at: SimTime) -> Option<SimTime> {
        let fi = self.faults.as_mut()?;
        if fi.plan.core_crash <= 0.0 || !fi.crash.roll() {
            return None;
        }
        fi.counters.core_crashes += 1;
        self.tracer
            .instant(TraceLayer::Ssd, "faults", "core-crash", at);
        Some(at)
    }

    fn run_morpheus(&mut self, spec: &AppSpec, p2p: bool) -> Result<RunOutcome, RunError> {
        match self.try_morpheus(spec, p2p) {
            Ok(out) => Ok(out),
            Err(MorpheusAbort::Fatal(e)) => Err(e),
            Err(MorpheusAbort::Fallback {
                at,
                iid,
                status,
                cause,
            }) => self.morpheus_fallback(spec, p2p, at, iid, status, cause),
        }
    }

    /// Graceful degradation: reap the failed Morpheus command with its
    /// error status, tear the instance down, and rerun deserialization on
    /// the host starting at the failure time. The run still produces
    /// bit-identical objects — just later, and visibly so in the report's
    /// fault counters and the trace.
    fn morpheus_fallback(
        &mut self,
        spec: &AppSpec,
        p2p: bool,
        at: SimTime,
        iid: u32,
        status: StatusCode,
        cause: String,
    ) -> Result<RunOutcome, RunError> {
        self.mssd.abort_instance(iid);
        // The driver's abort path reaps the instance's stream with a
        // synthetic completion carrying the failure status.
        let cid = self.alloc_cid();
        let wire = MorpheusCommand::Deinit { instance_id: iid }.into_command(cid, 1);
        self.round_trip(wire, status, 0);
        self.tracer
            .instant(TraceLayer::Host, OS_TRACK, "host-fallback", at);
        if let Some(fi) = self.faults.as_mut() {
            fi.counters.host_fallbacks += 1;
            fi.fallback_cause = Some(cause);
        }
        let meta = self
            .fs
            .open(&spec.input)
            .map_err(|_| RunError::UnknownFile(spec.input.clone()))?
            .clone();
        let (objects, mut window) = self.host_deser_window(spec, &meta, at)?;
        window.fell_back = true;
        let mode = if p2p {
            Mode::MorpheusP2P
        } else {
            Mode::Morpheus
        };
        self.finish_run(spec, mode, objects, window)
    }

    fn try_morpheus(&mut self, spec: &AppSpec, p2p: bool) -> Result<RunOutcome, MorpheusAbort> {
        // The runtime resolves the file into a stream (ms_stream_create):
        // permission checks and LBA layout stay on the host, §V-A2.
        let stream = crate::ms_stream_create(&self.fs, &spec.input, self.params.mread_chunk_bytes)
            .map_err(|_| RunError::UnknownFile(spec.input.clone()))?;
        let meta = stream.meta().clone();
        let chunks = stream.chunks().to_vec();
        let memo_key = self.device_memo_key(spec, &chunks);
        let iid = self.alloc_instance();
        let app: Box<dyn StorageApp> = match spec.input_format {
            InputFormat::Text => Box::new(DeserializeApp::new(&spec.name, spec.schema.clone())),
            InputFormat::Binary(e) => Box::new(BinaryDeserializeApp::new(
                &spec.name,
                spec.schema.clone(),
                e,
            )),
        };
        let code_bytes = app.code_bytes();

        // Host side: issue MINIT (one syscall + switch into the driver).
        let init_cost = self.os.command_completion();
        let init_iv = self.cpu_cores.acquire(
            SimTime::ZERO,
            self.cpu
                .duration(init_cost.instructions, CodeClass::OsKernel),
        );
        let mut cpu_busy = init_iv.duration();
        let cid = self.alloc_cid();
        let wire = MorpheusCommand::Init {
            instance_id: iid,
            code_ptr: 0x4000,
            code_len: code_bytes,
            arg: meta.len as u32,
        }
        .into_command(cid, 1);
        // Injected faults: the MINIT may be lost on the wire, or find its
        // embedded core stalled or crashed before the firmware runs it.
        let issue =
            self.issue_with_timeouts(init_iv.end, init_iv.end)
                .map_err(|(at, attempts)| MorpheusAbort::Fallback {
                    at,
                    iid,
                    status: StatusCode::CommandTimeout,
                    cause: format!("MINIT lost {attempts} times; reissue budget spent"),
                })?;
        let issue = self.inject_core_stall(issue);
        if let Some(at) = self.inject_core_crash(issue) {
            return Err(MorpheusAbort::Fallback {
                at,
                iid,
                status: StatusCode::CoreFault,
                cause: "embedded core crashed during MINIT".into(),
            });
        }
        self.round_trip(wire, StatusCode::Success, 0);
        let ready = self
            .mssd
            .minit_keyed(iid, app, issue, memo_key)
            .map_err(|e| MorpheusAbort::Fatal(e.into()))?;
        self.tracer.span(
            TraceLayer::Host,
            self.cpu_cores.name(),
            "minit-syscall",
            init_iv.start,
            init_iv.end,
        );
        self.tracer
            .span(TraceLayer::Nvme, NVME_TRACK, "MINIT", init_iv.end, ready);

        let bar = if p2p { Some(self.map_gpu_bar()) } else { None };
        let mut obj_bin: Vec<u8> = Vec::new();
        let mut last_end = ready;
        for c in &chunks {
            let issue = self
                .issue_with_timeouts(ready, ready)
                .map_err(|(at, attempts)| MorpheusAbort::Fallback {
                    at,
                    iid,
                    status: StatusCode::CommandTimeout,
                    cause: format!("MREAD lost {attempts} times; reissue budget spent"),
                })?;
            let issue = self.inject_core_stall(issue);
            if let Some(at) = self.inject_core_crash(issue) {
                return Err(MorpheusAbort::Fallback {
                    at,
                    iid,
                    status: StatusCode::CoreFault,
                    cause: "embedded core crashed during MREAD".into(),
                });
            }
            let out = match self.mssd.mread(iid, c.slba, c.blocks, c.valid_bytes, issue) {
                Ok(o) => o,
                Err(e) if e.status() == StatusCode::MediaUncorrectable => {
                    return Err(MorpheusAbort::Fallback {
                        at: issue,
                        iid,
                        status: StatusCode::MediaUncorrectable,
                        cause: morpheus_simcore::render_error_chain(&e),
                    });
                }
                Err(e) => return Err(MorpheusAbort::Fatal(e.into())),
            };
            // MREADs are all queued once the instance is up (async queue
            // depth): the command's lifecycle runs submit → staging done.
            self.tracer.span_bytes(
                TraceLayer::Nvme,
                NVME_TRACK,
                "MREAD",
                ready,
                out.done,
                c.valid_bytes,
            );
            self.nvme_lat
                .record(out.done.duration_since(ready).as_nanos());
            let end = self.deliver_output(&out.output, bar, iid, c.slba, c.blocks)?;
            if let Some(e) = end {
                cpu_busy += e.1;
                last_end = last_end.max(e.0);
            } else {
                last_end = last_end.max(out.done);
            }
            obj_bin.extend_from_slice(&out.output);
        }

        // MDEINIT: collect the final output and the return value.
        let cid = self.alloc_cid();
        let wire = MorpheusCommand::Deinit { instance_id: iid }.into_command(cid, 1);
        let issue = self
            .issue_with_timeouts(last_end, last_end)
            .map_err(|(at, attempts)| MorpheusAbort::Fallback {
                at,
                iid,
                status: StatusCode::CommandTimeout,
                cause: format!("MDEINIT lost {attempts} times; reissue budget spent"),
            })?;
        let issue = self.inject_core_stall(issue);
        if let Some(at) = self.inject_core_crash(issue) {
            return Err(MorpheusAbort::Fallback {
                at,
                iid,
                status: StatusCode::CoreFault,
                cause: "embedded core crashed during MDEINIT".into(),
            });
        }
        let dein = match self.mssd.mdeinit(iid, issue) {
            Ok(d) => d,
            Err(e) if e.status() == StatusCode::MediaUncorrectable => {
                return Err(MorpheusAbort::Fallback {
                    at: issue,
                    iid,
                    status: StatusCode::MediaUncorrectable,
                    cause: morpheus_simcore::render_error_chain(&e),
                });
            }
            Err(e) => return Err(MorpheusAbort::Fatal(e.into())),
        };
        self.tracer
            .span(TraceLayer::Nvme, NVME_TRACK, "MDEINIT", last_end, dein.done);
        let (retval, tail, dein_done) = (dein.retval, dein.host_output, dein.done);
        self.round_trip(wire, StatusCode::Success, retval as u32);
        let end = self.deliver_output(&tail, bar, iid, 0, 0)?;
        let deinit_wakeup = {
            let c = self.os.command_completion();
            let base = end.map(|e| e.0).unwrap_or(dein_done);
            let iv = self
                .cpu_cores
                .acquire(base, self.cpu.duration(c.instructions, CodeClass::OsKernel));
            self.tracer.span(
                TraceLayer::Host,
                self.cpu_cores.name(),
                "mdeinit-wakeup",
                iv.start,
                iv.end,
            );
            cpu_busy += iv.duration();
            iv.end
        };
        obj_bin.extend_from_slice(&tail);

        let objects = ParsedColumns::decode(spec.schema.clone(), &obj_bin)
            .map_err(|e| MorpheusAbort::Fatal(e.into()))?;
        debug_assert_eq!(retval as u64 as i64 as i32, objects.records as i32);
        let window = DeserWindow {
            end: deinit_wakeup,
            cpu_busy,
            text_bytes: meta.len,
            obj_addr: 0x2000,
            fell_back: false,
        };
        let mode = if p2p {
            Mode::MorpheusP2P
        } else {
            Mode::Morpheus
        };
        Ok(self.finish_run(spec, mode, objects, window)?)
    }

    /// DMAs one MREAD's output to its destination (host DRAM or the GPU
    /// BAR) and takes the per-completion host wakeup. Returns the wakeup's
    /// (end, cpu-time), or `None` for empty outputs.
    fn deliver_output(
        &mut self,
        output: &[u8],
        bar: Option<morpheus_pcie::BarWindow>,
        iid: u32,
        slba: u64,
        blocks: u64,
    ) -> Result<Option<(SimTime, SimDuration)>, RunError> {
        if output.is_empty() {
            return Ok(None);
        }
        let n = output.len() as u64;
        let addr = match bar {
            Some(w) => {
                let buf = self.gpu.alloc(n).ok_or(RunError::OutOfGpuMemory)?;
                w.base + buf.offset
            }
            None => self.dram.alloc(n).ok_or(RunError::OutOfHostMemory)?,
        };
        if blocks > 0 {
            let cid = self.alloc_cid();
            let wire = MorpheusCommand::Read {
                instance_id: iid,
                slba,
                blocks,
                dma_addr: addr,
            }
            .into_command(cid, 1);
            self.round_trip(wire, StatusCode::Success, 0);
        }
        // The SSD pushes finished objects; time base is the caller's
        // staging completion, which the fabric sees via its own timelines.
        let ready = self.mssd.dev.cores().horizon();
        let dma = self
            .fabric
            .dma(self.ssd_dev, DmaDir::Write, addr, n, ready)?;
        if bar.is_none() {
            self.membus.transfer(dma.start, n);
        }
        let c = self.os.command_completion();
        let iv = self.cpu_cores.acquire(
            dma.end,
            self.cpu.duration(c.instructions, CodeClass::OsKernel),
        );
        self.tracer
            .instant(TraceLayer::Host, OS_TRACK, "context-switch", iv.start);
        self.tracer.span(
            TraceLayer::Host,
            self.cpu_cores.name(),
            "completion",
            iv.start,
            iv.end,
        );
        Ok(Some((iv.end, iv.duration())))
    }

    /// Shared tail: other-CPU phase, copy phase, kernel phase, report.
    fn finish_run(
        &mut self,
        spec: &AppSpec,
        mode: Mode,
        objects: ParsedColumns,
        window: DeserWindow,
    ) -> Result<RunOutcome, RunError> {
        let records = objects.records;
        let obj_bytes = objects.binary_bytes();
        let membus_deser = self.membus.traffic_bytes();
        let acct = self.os.accounting();

        // Other host computation (setup, partitioning, result handling).
        let other_instr = spec.other_cpu_instr_per_record * records as f64;
        let other_iv = self.cpu_cores.acquire(
            window.end,
            self.cpu.duration(other_instr, CodeClass::AppKernel),
        );
        self.tracer.span(
            TraceLayer::Host,
            self.cpu_cores.name(),
            "other-cpu",
            other_iv.start,
            other_iv.end,
        );
        let mut cpu_busy_total = window.cpu_busy + other_iv.duration();

        let mut copy_s = 0.0;
        let kernel_start;
        let kernel_end;
        match spec.parallel {
            ParallelModel::CpuThreads(threads) => {
                let t = threads.clamp(1, self.cpu_cores.units() as u32);
                let per_thread = spec.kernel_cpu_instr_per_record * records as f64 / t as f64;
                let d = self.cpu.duration(per_thread, CodeClass::AppKernel);
                let mut kend = other_iv.end;
                for _ in 0..t {
                    let iv = self.cpu_cores.acquire(other_iv.end, d);
                    self.tracer.span(
                        TraceLayer::Host,
                        self.cpu_cores.name(),
                        "kernel",
                        iv.start,
                        iv.end,
                    );
                    kend = kend.max(iv.end);
                    cpu_busy_total += iv.duration();
                }
                self.membus.account(obj_bytes);
                kernel_start = other_iv.end;
                kernel_end = kend;
            }
            ParallelModel::GpuCuda => {
                let gk = spec.gpu_kernel.expect("checked in run()");
                let copy_end = if mode == Mode::MorpheusP2P && !window.fell_back {
                    other_iv.end
                } else {
                    // Pageable cudaMemcpy H2D: the driver first stages the
                    // object arrays through a pinned bounce buffer (a CPU
                    // memcpy: one read + one write across the memory bus),
                    // then DMAs from the pinned region.
                    let staged = self.membus.transfer(other_iv.end, 2 * obj_bytes);
                    let dma = self.fabric.dma(
                        self.gpu_dev,
                        DmaDir::Read,
                        window.obj_addr,
                        obj_bytes,
                        staged.end,
                    )?;
                    let mb = self.membus.transfer(dma.start, obj_bytes);
                    dma.end.max(mb.end)
                };
                copy_s = copy_end
                    .saturating_duration_since(other_iv.end)
                    .as_secs_f64();
                let cost = KernelCost::new(
                    gk.flops * records as f64,
                    (gk.bytes * records as f64) as u64,
                );
                let iv = self.gpu.launch(cost, copy_end);
                kernel_start = copy_end;
                kernel_end = iv.end;
            }
        }

        // --- measurements ---
        let deser_s = window.end.as_secs_f64();
        let total_s = kernel_end.as_secs_f64();
        let p = self.params.power;
        let cpu_delta = p.cpu_delta(self.cpu.frequency());
        let ssd_pool_busy_s =
            self.mssd.parse_core_busy().as_secs_f64() / self.params.ssd.embedded_cores as f64;
        let dram_j_deser = p.dram_watts_per_gbs * (membus_deser as f64 / 1e9);
        let deser_energy = p.idle_watts * deser_s
            + cpu_delta * window.cpu_busy.as_secs_f64()
            + p.ssd_cores_delta_watts * ssd_pool_busy_s
            + dram_j_deser;
        let gpu_busy_s = self.gpu.busy().as_secs_f64();
        let total_energy = p.idle_watts * total_s
            + cpu_delta * cpu_busy_total.as_secs_f64()
            + p.ssd_cores_delta_watts * ssd_pool_busy_s
            + p.gpu_active_delta_watts * gpu_busy_s
            + p.dram_watts_per_gbs * (self.membus.traffic_bytes() as f64 / 1e9);

        let mut metrics = Metrics::new();
        metrics.set(
            "ssd_parse_core_busy_s",
            self.mssd.parse_core_busy().as_secs_f64(),
        );
        metrics.set("cpu_busy_deser_s", window.cpu_busy.as_secs_f64());
        metrics.set("gpu_busy_s", gpu_busy_s);
        metrics.set("pcie_p2p_bytes", self.fabric.traffic().p2p_bytes as f64);
        metrics.set("kernel_start_s", kernel_start.as_secs_f64());
        // Latency distributions (absent when no timed command of the kind
        // ran, e.g. flash reads on a fully unwritten range).
        self.nvme_lat.export("nvme_cmd_lat_ns", &mut metrics);
        self.mssd
            .dev
            .read_latency()
            .export("flash_read_lat_ns", &mut metrics);
        // Object-cache lifetime counters (only when a cache is installed,
        // so cache-off reports keep their exact pre-cache metric set).
        if let Some(s) = self.object_cache.as_ref().map(|c| c.stats()) {
            metrics.set("cache_hits", s.hits as f64);
            metrics.set("cache_misses", s.misses as f64);
            metrics.set("cache_hit_rate", s.hit_rate());
            metrics.set("cache_dram_kb", (s.dram_bytes / 1024) as f64);
            metrics.set("cache_host_kb", (s.host_bytes / 1024) as f64);
        }

        let report = RunReport {
            app: spec.name.clone(),
            mode,
            storage: self.params.storage,
            cpu_freq_hz: self.cpu.frequency(),
            phases: Phases {
                deserialization_s: deser_s,
                other_cpu_s: other_iv.duration().as_secs_f64(),
                copy_s,
                kernel_s: kernel_end
                    .saturating_duration_since(kernel_start)
                    .as_secs_f64(),
            },
            text_bytes: window.text_bytes,
            object_bytes: obj_bytes,
            records,
            checksum: objects.checksum(),
            effective_bandwidth_mbs: crate::report::mb_per_sec(obj_bytes, deser_s),
            context_switches: acct.context_switches,
            cs_per_second: if deser_s > 0.0 {
                acct.context_switches as f64 / deser_s
            } else {
                0.0
            },
            syscalls: acct.syscalls,
            page_faults: acct.page_faults,
            pcie_bytes: self.fabric.traffic().total_bytes,
            membus_bytes: self.membus.traffic_bytes(),
            deser_power_watts: if deser_s > 0.0 {
                deser_energy / deser_s
            } else {
                p.idle_watts
            },
            deser_energy_j: deser_energy,
            total_energy_j: total_energy,
            host_dram_peak: self.dram.high_watermark(),
            faults: self.collect_fault_counters(),
            metrics,
            telemetry: self.telemetry_window.map(|w| {
                let log = self.tracer.snapshot();
                let mark = self.telemetry_mark.min(log.events.len());
                let tail = TraceLog {
                    events: log.events[mark..].to_vec(),
                };
                TelemetryReport::from_trace(&tail, w)
            }),
        };
        Ok(RunOutcome { report, objects })
    }

    /// Fold media/link statistics into the injector's counters and return a
    /// snapshot for the report. All-zero when no fault plan is armed.
    pub(crate) fn collect_fault_counters(&mut self) -> FaultCounters {
        let corrected = self.mssd.dev.ftl().flash().stats().corrected_reads;
        let uncorrectable = self.mssd.dev.ftl().flash().stats().uncorrectable_reads;
        let retries = self.mssd.dev.ftl().stats().read_retries;
        let degraded = self.fabric.traffic().degraded_dmas;
        match self.faults.as_mut() {
            Some(fi) => {
                fi.counters.ecc_corrected = corrected - fi.corrected_snap;
                fi.counters.media_retries = retries - fi.retries_snap;
                fi.counters.media_failures = (uncorrectable - fi.uncorrectable_snap)
                    .saturating_sub(fi.counters.media_retries);
                fi.counters.pcie_degraded = degraded;
                fi.counters
            }
            None => FaultCounters::default(),
        }
    }
}

fn work_delta(now: &ParseWork, before: &ParseWork) -> ParseWork {
    ParseWork {
        bytes_scanned: now.bytes_scanned - before.bytes_scanned,
        int_tokens: now.int_tokens - before.int_tokens,
        int_digits: now.int_digits - before.int_digits,
        float_tokens: now.float_tokens - before.float_tokens,
        float_digits: now.float_digits - before.float_digits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::FieldKind;

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    fn edge_text(edges: u32) -> Vec<u8> {
        let mut w = morpheus_format::TextWriter::new();
        for i in 0..edges {
            w.write_u64(u64::from(i) * 7 % 1000);
            w.sep();
            w.write_u64(u64::from(i) * 13 % 1000);
            w.newline();
        }
        w.into_bytes()
    }

    fn test_system() -> System {
        System::new(SystemParams::paper_testbed())
    }

    use crate::SystemParams;

    #[test]
    fn conventional_and_morpheus_produce_identical_objects() {
        let mut sys = test_system();
        sys.create_input_file("edges.txt", &edge_text(5000))
            .unwrap();
        let spec = AppSpec::cpu_app("bfs", "edges.txt", edge_schema(), 4, 100.0);
        let conv = sys.run(&spec, Mode::Conventional).unwrap();
        let morp = sys.run(&spec, Mode::Morpheus).unwrap();
        assert_eq!(conv.report.checksum, morp.report.checksum);
        assert_eq!(conv.objects, morp.objects);
        assert_eq!(conv.report.records, 5000);
    }

    #[test]
    fn run_telemetry_folds_only_this_runs_trace() {
        let mut sys = test_system();
        sys.set_tracer(morpheus_simcore::Tracer::enabled());
        sys.set_telemetry_window(Some(SimDuration::from_micros(100)));
        sys.create_input_file("edges.txt", &edge_text(5000))
            .unwrap();
        let spec = AppSpec::cpu_app("bfs", "edges.txt", edge_schema(), 4, 100.0);
        let a = sys.run(&spec, Mode::Morpheus).unwrap();
        let ta = a.report.telemetry.as_ref().expect("telemetry enabled");
        assert!(
            !ta.windows.is_empty(),
            "an enabled tracer must yield windows"
        );
        // A second identical run folds the same number of events even
        // though the trace log has accumulated both runs: the bookmark
        // keeps earlier runs out of the windows.
        let b = sys.run(&spec, Mode::Morpheus).unwrap();
        let tb = b.report.telemetry.as_ref().expect("telemetry enabled");
        assert_eq!(
            ta.to_csv(&[]),
            tb.to_csv(&[]),
            "identical runs fold identical telemetry"
        );
    }

    #[test]
    fn run_telemetry_absent_when_disabled_and_empty_without_tracer() {
        let mut sys = test_system();
        sys.create_input_file("edges.txt", &edge_text(1000))
            .unwrap();
        let spec = AppSpec::cpu_app("bfs", "edges.txt", edge_schema(), 1, 100.0);
        let off = sys.run(&spec, Mode::Morpheus).unwrap();
        assert!(off.report.telemetry.is_none(), "off by default");
        // With a window but no tracer the report exists but sees nothing.
        sys.set_telemetry_window(Some(SimDuration::from_micros(100)));
        let dark = sys.run(&spec, Mode::Morpheus).unwrap();
        let t = dark.report.telemetry.expect("window installed");
        assert!(t.windows.is_empty(), "no tracer, no events, no windows");
    }

    #[test]
    fn morpheus_speeds_up_deserialization() {
        let mut sys = test_system();
        sys.create_input_file("edges.txt", &edge_text(20_000))
            .unwrap();
        let spec = AppSpec::cpu_app("bfs", "edges.txt", edge_schema(), 4, 100.0);
        let conv = sys.run(&spec, Mode::Conventional).unwrap();
        let morp = sys.run(&spec, Mode::Morpheus).unwrap();
        let speedup = morp.report.deser_speedup_over(&conv.report);
        assert!(
            speedup > 1.1 && speedup < 3.5,
            "deser speedup {speedup} out of plausible range"
        );
    }

    #[test]
    fn morpheus_slashes_context_switches() {
        let mut sys = test_system();
        // Large enough that the conventional path needs many 64 KiB reads.
        sys.create_input_file("edges.txt", &edge_text(200_000))
            .unwrap();
        let spec = AppSpec::cpu_app("bfs", "edges.txt", edge_schema(), 4, 100.0);
        let conv = sys.run(&spec, Mode::Conventional).unwrap();
        let morp = sys.run(&spec, Mode::Morpheus).unwrap();
        assert!(
            morp.report.context_switches * 5 < conv.report.context_switches,
            "morpheus {} vs conventional {}",
            morp.report.context_switches,
            conv.report.context_switches
        );
    }

    #[test]
    fn p2p_runs_for_gpu_apps_and_skips_host_memory() {
        let mut sys = test_system();
        sys.create_input_file("edges.txt", &edge_text(20_000))
            .unwrap();
        let spec = AppSpec::gpu_app("bfs", "edges.txt", edge_schema(), 40.0, 16.0, 20.0);
        let conv = sys.run(&spec, Mode::Conventional).unwrap();
        let p2p = sys.run(&spec, Mode::MorpheusP2P).unwrap();
        assert_eq!(conv.report.checksum, p2p.report.checksum);
        assert!(p2p.report.membus_bytes < conv.report.membus_bytes / 2);
        assert_eq!(p2p.report.phases.copy_s, 0.0);
        assert!(p2p.report.metrics.get("pcie_p2p_bytes") > 0.0);
    }

    #[test]
    fn p2p_rejected_for_cpu_apps() {
        let mut sys = test_system();
        sys.create_input_file("edges.txt", &edge_text(100)).unwrap();
        let spec = AppSpec::cpu_app("bfs", "edges.txt", edge_schema(), 4, 100.0);
        assert!(matches!(
            sys.run(&spec, Mode::MorpheusP2P),
            Err(RunError::NotGpuApp(_))
        ));
    }

    #[test]
    fn unknown_file_rejected() {
        let mut sys = test_system();
        let spec = AppSpec::cpu_app("bfs", "missing.txt", edge_schema(), 4, 100.0);
        assert!(matches!(
            sys.run(&spec, Mode::Conventional),
            Err(RunError::UnknownFile(_))
        ));
    }

    #[test]
    fn reports_are_self_consistent() {
        let mut sys = test_system();
        sys.create_input_file("edges.txt", &edge_text(10_000))
            .unwrap();
        let spec = AppSpec::gpu_app("nn", "edges.txt", edge_schema(), 60.0, 16.0, 30.0);
        for mode in [Mode::Conventional, Mode::Morpheus, Mode::MorpheusP2P] {
            let out = sys.run(&spec, mode).unwrap();
            let r = &out.report;
            assert!(r.phases.total_s() > 0.0, "{mode}: empty run");
            assert!(r.deser_energy_j > 0.0);
            assert!(r.total_energy_j >= r.deser_energy_j);
            assert!(r.deser_power_watts >= sys.params.power.idle_watts);
            assert!(r.effective_bandwidth_mbs > 0.0);
            assert_eq!(r.object_bytes, 10_000 * 8);
        }
    }

    #[test]
    fn slower_cpu_hurts_conventional_more_than_morpheus() {
        let mut fast = System::new(SystemParams::paper_testbed());
        let mut slow = System::new(SystemParams::slow_server());
        let text = edge_text(20_000);
        fast.create_input_file("e.txt", &text).unwrap();
        slow.create_input_file("e.txt", &text).unwrap();
        let spec = AppSpec::cpu_app("bfs", "e.txt", edge_schema(), 4, 100.0);
        let conv_fast = fast.run(&spec, Mode::Conventional).unwrap();
        let conv_slow = slow.run(&spec, Mode::Conventional).unwrap();
        let morp_fast = fast.run(&spec, Mode::Morpheus).unwrap();
        let morp_slow = slow.run(&spec, Mode::Morpheus).unwrap();
        let fast_speedup = morp_fast.report.deser_speedup_over(&conv_fast.report);
        let slow_speedup = morp_slow.report.deser_speedup_over(&conv_slow.report);
        assert!(
            slow_speedup > fast_speedup,
            "slow {slow_speedup} should exceed fast {fast_speedup}"
        );
    }
}
