//! Run reports: the measurements every figure of the paper is built from.
//!
//! Throughput units: every `*_mbs` field in this crate is **decimal**
//! megabytes per second — [`MB`] = 10⁶ bytes, matching how drive vendors
//! and the paper's Fig. 3 quote bandwidth. Convert with [`mb_per_sec`];
//! never divide by `1e6` (or worse, `1 << 20`) inline.

use crate::StorageKind;
use morpheus_simcore::{FaultCounters, Metrics, TelemetryReport};
use std::fmt;

/// One decimal megabyte in bytes (10⁶, not 2²⁰).
pub const MB: f64 = 1e6;

/// Bytes over a window in seconds, as decimal MB/s — the one conversion
/// every `*_mbs` report field uses. Zero-length windows yield `0.0`
/// rather than dividing by zero.
///
/// ```
/// // 2 000 000 bytes in 2 s is exactly 1 decimal MB/s …
/// assert_eq!(morpheus::mb_per_sec(2_000_000, 2.0), 1.0);
/// // … not 1 MiB/s: the divisor is 1e6, never 1 << 20.
/// assert!(morpheus::mb_per_sec(1 << 20, 1.0) > 1.0);
/// assert_eq!(morpheus::mb_per_sec(123, 0.0), 0.0);
/// ```
pub fn mb_per_sec(bytes: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        bytes as f64 / seconds / MB
    } else {
        0.0
    }
}

/// Execution mode of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Conventional host-CPU deserialization (the paper's baseline).
    Conventional,
    /// Morpheus-SSD: StorageApp deserializes in the drive, objects DMA to
    /// host DRAM.
    Morpheus,
    /// Morpheus-SSD + NVMe-P2P: objects DMA straight into GPU memory.
    MorpheusP2P,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::Conventional => "conventional",
            Mode::Morpheus => "morpheus",
            Mode::MorpheusP2P => "morpheus+p2p",
        };
        f.write_str(s)
    }
}

/// Wall-clock phase breakdown in seconds (Fig. 2's categories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Phases {
    /// Object deserialization including the input I/O it overlaps
    /// (phases A+B of Fig. 1 / the StorageApp window).
    pub deserialization_s: f64,
    /// Other host CPU computation (setup, partitioning, result handling).
    pub other_cpu_s: f64,
    /// Host↔GPU data copies.
    pub copy_s: f64,
    /// Compute kernel (CPU or GPU).
    pub kernel_s: f64,
}

impl Phases {
    /// End-to-end time.
    pub fn total_s(&self) -> f64 {
        self.deserialization_s + self.other_cpu_s + self.copy_s + self.kernel_s
    }

    /// Fraction of total time spent deserializing.
    pub fn deserialization_fraction(&self) -> f64 {
        let t = self.total_s();
        if t > 0.0 {
            self.deserialization_s / t
        } else {
            0.0
        }
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Execution mode.
    pub mode: Mode,
    /// Storage device backing the conventional path.
    pub storage: StorageKind,
    /// Host CPU frequency used, Hz.
    pub cpu_freq_hz: f64,
    /// Phase breakdown.
    pub phases: Phases,
    /// Input text size, bytes.
    pub text_bytes: u64,
    /// Binary object size produced, bytes.
    pub object_bytes: u64,
    /// Records deserialized.
    pub records: u64,
    /// Object checksum (must agree across modes).
    pub checksum: u64,
    /// Objects produced per second of deserialization, MB/s (Fig. 3's
    /// "effective bandwidth").
    pub effective_bandwidth_mbs: f64,
    /// Context switches during deserialization.
    pub context_switches: u64,
    /// Context switches per second of deserialization (Fig. 10).
    pub cs_per_second: f64,
    /// Syscalls during deserialization.
    pub syscalls: u64,
    /// Page faults during deserialization.
    pub page_faults: u64,
    /// Bytes crossing the PCIe fabric.
    pub pcie_bytes: u64,
    /// Bytes crossing the CPU-memory bus.
    pub membus_bytes: u64,
    /// Mean total-system power during deserialization, watts (Fig. 9).
    pub deser_power_watts: f64,
    /// Energy consumed during deserialization, joules (Fig. 9).
    pub deser_energy_j: f64,
    /// Energy of the whole run, joules.
    pub total_energy_j: f64,
    /// Peak host DRAM allocated, bytes.
    pub host_dram_peak: u64,
    /// Injected faults and the recovery they triggered (all zero unless a
    /// fault plan was installed with
    /// [`System::set_fault_plan`](crate::System::set_fault_plan)).
    pub faults: FaultCounters,
    /// Extra measurements (ad hoc, sorted).
    pub metrics: Metrics,
    /// Windowed telemetry folded from this run's trace (`None` unless
    /// [`System::set_telemetry_window`](crate::System::set_telemetry_window)
    /// enabled it; empty without an enabled tracer).
    pub telemetry: Option<TelemetryReport>,
}

impl RunReport {
    /// Speedup of this run's deserialization over a baseline run's.
    pub fn deser_speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.phases.deserialization_s / self.phases.deserialization_s
    }

    /// Speedup of this run's total time over a baseline run's.
    pub fn total_speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.phases.total_s() / self.phases.total_s()
    }
}

impl StorageKind {
    /// Stable lowercase name (used in report rows and sweep labels).
    pub fn label(&self) -> &'static str {
        match self {
            StorageKind::NvmeSsd => "nvme-ssd",
            StorageKind::RamDrive => "ram-drive",
            StorageKind::Hdd => "hdd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_total_and_fraction() {
        let p = Phases {
            deserialization_s: 6.4,
            other_cpu_s: 1.0,
            copy_s: 0.6,
            kernel_s: 2.0,
        };
        assert!((p.total_s() - 10.0).abs() < 1e-12);
        assert!((p.deserialization_fraction() - 0.64).abs() < 1e-12);
    }

    #[test]
    fn zero_phases_have_zero_fraction() {
        assert_eq!(Phases::default().deserialization_fraction(), 0.0);
    }

    #[test]
    fn mode_displays() {
        assert_eq!(Mode::Conventional.to_string(), "conventional");
        assert_eq!(Mode::MorpheusP2P.to_string(), "morpheus+p2p");
    }
}
