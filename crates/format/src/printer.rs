//! Text serialization (the inverse direction, used by workload generators
//! and the `ms_printf` device-library primitive).

/// Accounting of serialization work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerializeWork {
    /// Bytes emitted (tokens + separators).
    pub bytes_emitted: u64,
    /// Tokens written.
    pub tokens: u64,
}

/// A growable text buffer with numeric formatting and work accounting.
///
/// # Example
///
/// ```
/// use morpheus_format::TextWriter;
///
/// let mut w = TextWriter::new();
/// w.write_u64(12);
/// w.sep();
/// w.write_i64(-3);
/// w.newline();
/// assert_eq!(w.as_bytes(), b"12 -3\n");
/// assert_eq!(w.work().tokens, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextWriter {
    out: Vec<u8>,
    work: SerializeWork,
}

impl TextWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        TextWriter {
            out: Vec::with_capacity(bytes),
            work: SerializeWork::default(),
        }
    }

    /// The emitted bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.out
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    /// Serialization work so far.
    pub fn work(&self) -> SerializeWork {
        self.work
    }

    /// Emitted length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn push_token(&mut self, s: &str) {
        self.out.extend_from_slice(s.as_bytes());
        self.work.bytes_emitted += s.len() as u64;
        self.work.tokens += 1;
    }

    /// Writes an unsigned integer token.
    pub fn write_u64(&mut self, v: u64) {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = v;
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let s = std::str::from_utf8(&buf[i..]).expect("digits are ascii");
        self.push_token(s);
    }

    /// Writes a signed integer token.
    pub fn write_i64(&mut self, v: i64) {
        if v < 0 {
            self.out.push(b'-');
            self.work.bytes_emitted += 1;
            self.write_u64(v.unsigned_abs());
            // The sign and magnitude are one token.
            self.work.tokens -= 1;
            self.work.tokens += 1;
        } else {
            self.write_u64(v as u64);
        }
    }

    /// Writes a float token with `decimals` fractional digits.
    pub fn write_f64(&mut self, v: f64, decimals: usize) {
        let s = format!("{v:.decimals$}");
        self.push_token(&s);
    }

    /// Writes a single separating space (not counted as a token).
    pub fn sep(&mut self) {
        self.out.push(b' ');
        self.work.bytes_emitted += 1;
    }

    /// Writes a newline (not counted as a token).
    pub fn newline(&mut self) {
        self.out.push(b'\n');
        self.work.bytes_emitted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TextScanner;

    #[test]
    fn u64_formatting_matches_std() {
        for v in [0u64, 7, 10, 99, 12345678901234567890] {
            let mut w = TextWriter::new();
            w.write_u64(v);
            assert_eq!(w.as_bytes(), v.to_string().as_bytes());
        }
    }

    #[test]
    fn i64_formatting_matches_std() {
        for v in [0i64, -1, i64::MIN, i64::MAX, -987654321] {
            let mut w = TextWriter::new();
            w.write_i64(v);
            assert_eq!(w.as_bytes(), v.to_string().as_bytes());
        }
    }

    #[test]
    fn float_round_trips_through_scanner() {
        let mut w = TextWriter::new();
        w.write_f64(-123.456, 3);
        let mut s = TextScanner::new(w.as_bytes());
        assert!((s.parse_f64().unwrap() + 123.456).abs() < 1e-9);
    }

    #[test]
    fn work_counts_bytes_and_tokens() {
        let mut w = TextWriter::new();
        w.write_u64(12);
        w.sep();
        w.write_i64(-3);
        w.newline();
        let work = w.work();
        assert_eq!(work.bytes_emitted, w.len() as u64);
        assert_eq!(work.tokens, 2);
    }

    #[test]
    fn capacity_constructor_and_emptiness() {
        let w = TextWriter::with_capacity(64);
        assert!(w.is_empty());
    }
}
