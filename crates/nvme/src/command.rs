//! 64-byte NVMe command packets and the Morpheus typed views.

use crate::wire::{Buf, BufMut};
use std::fmt;

/// Size of an encoded NVMe command packet.
pub const CMD_BYTES: usize = 64;

/// Logical block size used by the model's namespaces.
pub const LBA_BYTES: u64 = 512;

/// NVMe limits the data length of one I/O command; the paper notes the
/// runtime must split files into multiple MREADs beyond this (§V-B).
pub const MAX_IO_BLOCKS: u64 = 1 << 16;

/// I/O-queue opcodes understood by the model, including the four Morpheus
/// extensions in the vendor-specific space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IoOpcode {
    /// NVMe Flush.
    Flush = 0x00,
    /// NVMe Write.
    Write = 0x01,
    /// NVMe Read.
    Read = 0x02,
    /// NVMe Dataset Management (used for TRIM).
    DatasetMgmt = 0x09,
    /// Morpheus: initialize a StorageApp instance.
    MInit = 0x80,
    /// Morpheus: write data through a StorageApp.
    MWrite = 0x81,
    /// Morpheus: read data through a StorageApp.
    MRead = 0x82,
    /// Morpheus: finish a StorageApp instance.
    MDeinit = 0x84,
}

impl IoOpcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<IoOpcode> {
        Some(match b {
            0x00 => IoOpcode::Flush,
            0x01 => IoOpcode::Write,
            0x02 => IoOpcode::Read,
            0x09 => IoOpcode::DatasetMgmt,
            0x80 => IoOpcode::MInit,
            0x81 => IoOpcode::MWrite,
            0x82 => IoOpcode::MRead,
            0x84 => IoOpcode::MDeinit,
            _ => return None,
        })
    }

    /// True for the four Morpheus extension opcodes.
    pub fn is_morpheus(self) -> bool {
        matches!(
            self,
            IoOpcode::MInit | IoOpcode::MWrite | IoOpcode::MRead | IoOpcode::MDeinit
        )
    }
}

/// Alias kept for readability in APIs that accept any opcode byte.
pub type Opcode = IoOpcode;

/// A decoded NVMe submission-queue entry.
///
/// Field layout follows the NVMe 1.2 SQE: opcode/flags/cid in dword 0,
/// namespace id, metadata and data pointers, then six command dwords. The
/// encoding is byte-exact little-endian so packets round-trip through
/// [`encode`](NvmeCommand::encode) / [`decode`](NvmeCommand::decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeCommand {
    /// Command opcode.
    pub opcode: IoOpcode,
    /// Command flags (fused operations, PRP vs SGL; unused by the model).
    pub flags: u8,
    /// Command identifier, echoed in the completion entry.
    pub cid: u16,
    /// Namespace identifier.
    pub nsid: u32,
    /// Metadata pointer (unused by the model, preserved in encoding).
    pub mptr: u64,
    /// Data pointer 1 (host or peer bus address for DMA).
    pub prp1: u64,
    /// Data pointer 2 (second page or list; preserved).
    pub prp2: u64,
    /// Command dwords 10–15.
    pub cdw: [u32; 6],
}

impl NvmeCommand {
    /// Creates a command with zeroed optional fields.
    pub fn new(opcode: IoOpcode, cid: u16, nsid: u32) -> Self {
        NvmeCommand {
            opcode,
            flags: 0,
            cid,
            nsid,
            mptr: 0,
            prp1: 0,
            prp2: 0,
            cdw: [0; 6],
        }
    }

    /// A standard read of `blocks` logical blocks starting at `slba`,
    /// targeting bus address `prp1`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is 0 or exceeds [`MAX_IO_BLOCKS`].
    pub fn read(cid: u16, nsid: u32, slba: u64, blocks: u64, prp1: u64) -> Self {
        Self::rw(IoOpcode::Read, cid, nsid, slba, blocks, prp1)
    }

    /// A standard write of `blocks` logical blocks starting at `slba`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is 0 or exceeds [`MAX_IO_BLOCKS`].
    pub fn write(cid: u16, nsid: u32, slba: u64, blocks: u64, prp1: u64) -> Self {
        Self::rw(IoOpcode::Write, cid, nsid, slba, blocks, prp1)
    }

    fn rw(op: IoOpcode, cid: u16, nsid: u32, slba: u64, blocks: u64, prp1: u64) -> Self {
        assert!(
            blocks > 0 && blocks <= MAX_IO_BLOCKS,
            "blocks must be in 1..={MAX_IO_BLOCKS}, got {blocks}"
        );
        let mut c = NvmeCommand::new(op, cid, nsid);
        c.prp1 = prp1;
        c.cdw[0] = slba as u32;
        c.cdw[1] = (slba >> 32) as u32;
        // NLB is a 0-based field in NVMe.
        c.cdw[2] = (blocks - 1) as u32;
        c
    }

    /// Starting LBA of a read/write command.
    pub fn slba(&self) -> u64 {
        self.cdw[0] as u64 | ((self.cdw[1] as u64) << 32)
    }

    /// Block count of a read/write command (converting from the 0-based
    /// on-wire field).
    pub fn blocks(&self) -> u64 {
        self.cdw[2] as u64 + 1
    }

    /// Encodes into the 64-byte on-wire packet.
    pub fn encode(&self) -> [u8; CMD_BYTES] {
        let mut buf = [0u8; CMD_BYTES];
        {
            let mut w: &mut [u8] = &mut buf;
            w.put_u8(self.opcode as u8);
            w.put_u8(self.flags);
            w.put_u16_le(self.cid);
            w.put_u32_le(self.nsid);
            w.put_u64_le(0); // reserved dwords 2-3
            w.put_u64_le(self.mptr);
            w.put_u64_le(self.prp1);
            w.put_u64_le(self.prp2);
            for d in self.cdw {
                w.put_u32_le(d);
            }
        }
        buf
    }

    /// Decodes a 64-byte packet.
    ///
    /// Returns `None` if the buffer is not exactly [`CMD_BYTES`] long or the
    /// opcode is unknown.
    pub fn decode(bytes: &[u8]) -> Option<NvmeCommand> {
        if bytes.len() != CMD_BYTES {
            return None;
        }
        let mut r: &[u8] = bytes;
        let opcode = IoOpcode::from_u8(r.get_u8())?;
        let flags = r.get_u8();
        let cid = r.get_u16_le();
        let nsid = r.get_u32_le();
        let _reserved = r.get_u64_le();
        let mptr = r.get_u64_le();
        let prp1 = r.get_u64_le();
        let prp2 = r.get_u64_le();
        let mut cdw = [0u32; 6];
        for d in &mut cdw {
            *d = r.get_u32_le();
        }
        Some(NvmeCommand {
            opcode,
            flags,
            cid,
            nsid,
            mptr,
            prp1,
            prp2,
            cdw,
        })
    }
}

impl fmt::Display for NvmeCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} cid={} nsid={}", self.opcode, self.cid, self.nsid)
    }
}

/// Typed view of the four Morpheus extension commands (§IV-A).
///
/// Each variant captures the payload the paper describes: MINIT carries a
/// pointer to and length of the StorageApp code plus host arguments and the
/// instance ID used to route subsequent commands to the same embedded core;
/// MREAD/MWRITE are conventional transfers tagged with an instance ID;
/// MDEINIT releases the instance and returns the StorageApp's return value
/// through the completion entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorpheusCommand {
    /// Install a StorageApp and create an execution instance.
    Init {
        /// Instance ID chosen by the host runtime (unique per host thread).
        instance_id: u32,
        /// Host bus address of the StorageApp binary image.
        code_ptr: u64,
        /// Length of the binary image in bytes.
        code_len: u32,
        /// One packed argument word from the host application.
        arg: u32,
    },
    /// Read `blocks` logical blocks from `slba` *through* the StorageApp.
    Read {
        /// Target instance.
        instance_id: u32,
        /// Starting logical block.
        slba: u64,
        /// Number of blocks (1-based).
        blocks: u64,
        /// Destination bus address (host DRAM or a peer BAR for P2P).
        dma_addr: u64,
    },
    /// Write `blocks` logical blocks to `slba` through the StorageApp.
    Write {
        /// Target instance.
        instance_id: u32,
        /// Starting logical block.
        slba: u64,
        /// Number of blocks (1-based).
        blocks: u64,
        /// Source bus address.
        dma_addr: u64,
    },
    /// Finish the instance; the completion carries the return value.
    Deinit {
        /// Target instance.
        instance_id: u32,
    },
}

impl MorpheusCommand {
    /// Lowers the typed view into an on-wire [`NvmeCommand`].
    ///
    /// # Panics
    ///
    /// Panics if a transfer's block count is 0 or exceeds
    /// [`MAX_IO_BLOCKS`].
    pub fn into_command(self, cid: u16, nsid: u32) -> NvmeCommand {
        match self {
            MorpheusCommand::Init {
                instance_id,
                code_ptr,
                code_len,
                arg,
            } => {
                let mut c = NvmeCommand::new(IoOpcode::MInit, cid, nsid);
                c.prp1 = code_ptr;
                c.cdw[0] = instance_id;
                c.cdw[1] = code_len;
                c.cdw[2] = arg;
                c
            }
            MorpheusCommand::Read {
                instance_id,
                slba,
                blocks,
                dma_addr,
            } => {
                let mut c = NvmeCommand::rw(IoOpcode::MRead, cid, nsid, slba, blocks, dma_addr);
                c.cdw[3] = instance_id;
                c
            }
            MorpheusCommand::Write {
                instance_id,
                slba,
                blocks,
                dma_addr,
            } => {
                let mut c = NvmeCommand::rw(IoOpcode::MWrite, cid, nsid, slba, blocks, dma_addr);
                c.cdw[3] = instance_id;
                c
            }
            MorpheusCommand::Deinit { instance_id } => {
                let mut c = NvmeCommand::new(IoOpcode::MDeinit, cid, nsid);
                c.cdw[0] = instance_id;
                c
            }
        }
    }

    /// Parses the typed view back out of an on-wire command.
    ///
    /// Returns `None` for non-Morpheus opcodes.
    pub fn parse(c: &NvmeCommand) -> Option<MorpheusCommand> {
        Some(match c.opcode {
            IoOpcode::MInit => MorpheusCommand::Init {
                instance_id: c.cdw[0],
                code_ptr: c.prp1,
                code_len: c.cdw[1],
                arg: c.cdw[2],
            },
            IoOpcode::MRead => MorpheusCommand::Read {
                instance_id: c.cdw[3],
                slba: c.slba(),
                blocks: c.blocks(),
                dma_addr: c.prp1,
            },
            IoOpcode::MWrite => MorpheusCommand::Write {
                instance_id: c.cdw[3],
                slba: c.slba(),
                blocks: c.blocks(),
                dma_addr: c.prp1,
            },
            IoOpcode::MDeinit => MorpheusCommand::Deinit {
                instance_id: c.cdw[0],
            },
            _ => return None,
        })
    }

    /// The instance ID carried by any Morpheus command.
    pub fn instance_id(&self) -> u32 {
        match *self {
            MorpheusCommand::Init { instance_id, .. }
            | MorpheusCommand::Read { instance_id, .. }
            | MorpheusCommand::Write { instance_id, .. }
            | MorpheusCommand::Deinit { instance_id } => instance_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_64_bytes_and_round_trips() {
        let mut c = NvmeCommand::read(9, 1, 0x1_2345_6789, 128, 0xdead_beef_0000);
        c.flags = 0x40;
        c.mptr = 77;
        c.prp2 = 88;
        let bytes = c.encode();
        assert_eq!(bytes.len(), CMD_BYTES);
        assert_eq!(NvmeCommand::decode(&bytes).unwrap(), c);
    }

    #[test]
    fn decode_rejects_wrong_length_and_bad_opcode() {
        assert!(NvmeCommand::decode(&[0u8; 63]).is_none());
        let mut bytes = NvmeCommand::new(IoOpcode::Read, 0, 1).encode();
        bytes[0] = 0x55; // unknown opcode
        assert!(NvmeCommand::decode(&bytes).is_none());
    }

    #[test]
    fn slba_and_blocks_survive_64_bit_lbas() {
        let c = NvmeCommand::write(1, 1, u64::from(u32::MAX) + 5, MAX_IO_BLOCKS, 0);
        assert_eq!(c.slba(), u64::from(u32::MAX) + 5);
        assert_eq!(c.blocks(), MAX_IO_BLOCKS);
    }

    #[test]
    #[should_panic(expected = "blocks must be")]
    fn oversized_transfer_rejected() {
        let _ = NvmeCommand::read(0, 1, 0, MAX_IO_BLOCKS + 1, 0);
    }

    #[test]
    #[should_panic(expected = "blocks must be")]
    fn zero_block_transfer_rejected() {
        let _ = NvmeCommand::read(0, 1, 0, 0, 0);
    }

    #[test]
    fn morpheus_views_round_trip() {
        let cases = [
            MorpheusCommand::Init {
                instance_id: 3,
                code_ptr: 0xabc0,
                code_len: 4096,
                arg: 17,
            },
            MorpheusCommand::Read {
                instance_id: 3,
                slba: 1 << 40,
                blocks: 64,
                dma_addr: 0xffff_0000,
            },
            MorpheusCommand::Write {
                instance_id: 4,
                slba: 12,
                blocks: 1,
                dma_addr: 0x10,
            },
            MorpheusCommand::Deinit { instance_id: 3 },
        ];
        for m in cases {
            let wire = m.into_command(5, 1);
            assert!(wire.opcode.is_morpheus());
            let bytes = wire.encode();
            let back = NvmeCommand::decode(&bytes).unwrap();
            assert_eq!(MorpheusCommand::parse(&back), Some(m));
            assert_eq!(
                MorpheusCommand::parse(&back).unwrap().instance_id(),
                m.instance_id()
            );
        }
    }

    #[test]
    fn parse_rejects_standard_opcodes() {
        let c = NvmeCommand::read(0, 1, 0, 1, 0);
        assert!(MorpheusCommand::parse(&c).is_none());
    }

    #[test]
    fn standard_opcodes_are_not_morpheus() {
        assert!(!IoOpcode::Read.is_morpheus());
        assert!(!IoOpcode::Flush.is_morpheus());
        assert!(IoOpcode::MInit.is_morpheus());
    }
}
