//! Admin command set: controller identification and I/O queue management.
//!
//! NVMe separates admin commands (queue creation, Identify, features) from
//! I/O commands (§II: "a set of I/O commands to access the data and admin
//! commands to manage I/O requests"). The Morpheus host runtime uses
//! Identify to discover whether a drive speaks the extension — the
//! vendor-specific region of the Identify Controller page advertises the
//! StorageApp execution resources (core count, clock, SRAM sizes).

use crate::wire::{Buf, BufMut};
use crate::{QueuePair, StatusCode};
use std::collections::BTreeMap;

/// Admin-queue opcodes (NVMe 1.2 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AdminOpcode {
    /// Delete an I/O submission queue.
    DeleteIoSq = 0x00,
    /// Create an I/O submission queue.
    CreateIoSq = 0x01,
    /// Delete an I/O completion queue.
    DeleteIoCq = 0x04,
    /// Create an I/O completion queue.
    CreateIoCq = 0x05,
    /// Identify controller/namespace.
    Identify = 0x06,
}

impl AdminOpcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<AdminOpcode> {
        Some(match b {
            0x00 => AdminOpcode::DeleteIoSq,
            0x01 => AdminOpcode::CreateIoSq,
            0x04 => AdminOpcode::DeleteIoCq,
            0x05 => AdminOpcode::CreateIoCq,
            0x06 => AdminOpcode::Identify,
            _ => return None,
        })
    }
}

/// Size of an Identify data page.
pub const IDENTIFY_BYTES: usize = 4096;

/// Offset of the vendor-specific Morpheus capability block within the
/// Identify Controller page (the standard reserves 3072.. for vendors).
const MORPHEUS_CAPS_OFFSET: usize = 3072;
/// Magic tag marking a Morpheus-capable controller.
const MORPHEUS_MAGIC: u32 = 0x4D4F_5248; // "MORH"

/// Identify Controller data (the fields the model uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyController {
    /// PCI vendor id.
    pub vendor_id: u16,
    /// ASCII serial number (20 bytes, space padded).
    pub serial: String,
    /// ASCII model number (40 bytes, space padded).
    pub model: String,
    /// Maximum data transfer size as a power-of-two multiple of 4 KiB
    /// pages (0 = unlimited).
    pub mdts: u8,
    /// Number of namespaces.
    pub namespaces: u32,
    /// Morpheus capability block, if the firmware supports StorageApps.
    pub morpheus: Option<MorpheusCaps>,
}

/// The vendor-specific Morpheus capability block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorpheusCaps {
    /// General-purpose embedded cores available to StorageApps.
    pub embedded_cores: u32,
    /// Core clock in MHz.
    pub core_clock_mhz: u32,
    /// Instruction SRAM per core, bytes.
    pub isram_bytes: u32,
    /// Data SRAM per core, bytes.
    pub dsram_bytes: u32,
}

impl IdentifyController {
    /// Encodes the 4 KiB Identify page.
    ///
    /// # Panics
    ///
    /// Panics if `serial` exceeds 20 bytes or `model` exceeds 40.
    pub fn encode(&self) -> Box<[u8; IDENTIFY_BYTES]> {
        assert!(self.serial.len() <= 20, "serial too long");
        assert!(self.model.len() <= 40, "model too long");
        let mut page = Box::new([0u8; IDENTIFY_BYTES]);
        {
            let mut w: &mut [u8] = &mut page[..];
            w.put_u16_le(self.vendor_id);
            w.put_u16_le(self.vendor_id); // ssvid mirrors vid
        }
        let mut serial = [b' '; 20];
        serial[..self.serial.len()].copy_from_slice(self.serial.as_bytes());
        page[4..24].copy_from_slice(&serial);
        let mut model = [b' '; 40];
        model[..self.model.len()].copy_from_slice(self.model.as_bytes());
        page[24..64].copy_from_slice(&model);
        page[77] = self.mdts;
        page[516..520].copy_from_slice(&self.namespaces.to_le_bytes());
        if let Some(m) = self.morpheus {
            let mut w: &mut [u8] = &mut page[MORPHEUS_CAPS_OFFSET..];
            w.put_u32_le(MORPHEUS_MAGIC);
            w.put_u32_le(m.embedded_cores);
            w.put_u32_le(m.core_clock_mhz);
            w.put_u32_le(m.isram_bytes);
            w.put_u32_le(m.dsram_bytes);
        }
        page
    }

    /// Decodes an Identify page.
    ///
    /// Returns `None` if the buffer is the wrong size.
    pub fn decode(page: &[u8]) -> Option<IdentifyController> {
        if page.len() != IDENTIFY_BYTES {
            return None;
        }
        let mut r: &[u8] = page;
        let vendor_id = r.get_u16_le();
        let _ssvid = r.get_u16_le();
        let serial = String::from_utf8_lossy(&page[4..24]).trim_end().to_string();
        let model = String::from_utf8_lossy(&page[24..64])
            .trim_end()
            .to_string();
        let mdts = page[77];
        let namespaces = u32::from_le_bytes(page[516..520].try_into().expect("4 bytes"));
        let mut caps: &[u8] = &page[MORPHEUS_CAPS_OFFSET..];
        let morpheus = if caps.get_u32_le() == MORPHEUS_MAGIC {
            Some(MorpheusCaps {
                embedded_cores: caps.get_u32_le(),
                core_clock_mhz: caps.get_u32_le(),
                isram_bytes: caps.get_u32_le(),
                dsram_bytes: caps.get_u32_le(),
            })
        } else {
            None
        };
        Some(IdentifyController {
            vendor_id,
            serial,
            model,
            mdts,
            namespaces,
            morpheus,
        })
    }
}

/// The admin controller: serves Identify and manages I/O queue pairs.
#[derive(Debug)]
pub struct AdminController {
    identity: IdentifyController,
    io_queues: BTreeMap<u16, QueuePair>,
    max_queues: u16,
}

impl AdminController {
    /// Creates a controller with an identity and an I/O queue budget.
    pub fn new(identity: IdentifyController, max_queues: u16) -> Self {
        AdminController {
            identity,
            io_queues: BTreeMap::new(),
            max_queues,
        }
    }

    /// Serves Identify Controller: the 4 KiB page the host DMA-reads.
    pub fn identify(&self) -> Box<[u8; IDENTIFY_BYTES]> {
        self.identity.encode()
    }

    /// Creates I/O queue pair `qid` with the given depth.
    ///
    /// Returns the completion status (InvalidField for qid 0 — that is the
    /// admin queue — duplicates, or exhausted budget).
    pub fn create_io_queue(&mut self, qid: u16, depth: usize) -> StatusCode {
        if qid == 0 || self.io_queues.contains_key(&qid) || depth == 0 {
            return StatusCode::InvalidField;
        }
        if self.io_queues.len() as u16 >= self.max_queues {
            return StatusCode::InvalidField;
        }
        self.io_queues.insert(qid, QueuePair::new(depth));
        StatusCode::Success
    }

    /// Deletes I/O queue pair `qid`.
    pub fn delete_io_queue(&mut self, qid: u16) -> StatusCode {
        match self.io_queues.remove(&qid) {
            Some(_) => StatusCode::Success,
            None => StatusCode::InvalidField,
        }
    }

    /// Accesses a created queue pair.
    pub fn io_queue(&mut self, qid: u16) -> Option<&mut QueuePair> {
        self.io_queues.get_mut(&qid)
    }

    /// Number of live I/O queues.
    pub fn io_queue_count(&self) -> usize {
        self.io_queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> IdentifyController {
        IdentifyController {
            vendor_id: 0x1b4b,
            serial: "MORPH-0001".into(),
            model: "Morpheus-SSD 512GB".into(),
            mdts: 5,
            namespaces: 1,
            morpheus: Some(MorpheusCaps {
                embedded_cores: 4,
                core_clock_mhz: 800,
                isram_bytes: 128 * 1024,
                dsram_bytes: 256 * 1024,
            }),
        }
    }

    #[test]
    fn identify_page_round_trips() {
        let id = identity();
        let page = id.encode();
        assert_eq!(page.len(), IDENTIFY_BYTES);
        let back = IdentifyController::decode(&page[..]).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn non_morpheus_drive_has_no_caps() {
        let id = IdentifyController {
            morpheus: None,
            ..identity()
        };
        let back = IdentifyController::decode(&id.encode()[..]).unwrap();
        assert_eq!(back.morpheus, None);
    }

    #[test]
    fn decode_rejects_wrong_size() {
        assert!(IdentifyController::decode(&[0u8; 100]).is_none());
    }

    #[test]
    fn queue_lifecycle() {
        let mut c = AdminController::new(identity(), 2);
        assert_eq!(c.create_io_queue(1, 32), StatusCode::Success);
        assert_eq!(c.create_io_queue(1, 32), StatusCode::InvalidField);
        assert_eq!(c.create_io_queue(0, 32), StatusCode::InvalidField);
        assert_eq!(c.create_io_queue(2, 32), StatusCode::Success);
        assert_eq!(c.create_io_queue(3, 32), StatusCode::InvalidField); // budget
        assert!(c.io_queue(1).is_some());
        assert_eq!(c.io_queue_count(), 2);
        assert_eq!(c.delete_io_queue(1), StatusCode::Success);
        assert_eq!(c.delete_io_queue(1), StatusCode::InvalidField);
        assert!(c.io_queue(1).is_none());
    }

    #[test]
    fn admin_opcodes_round_trip() {
        for op in [
            AdminOpcode::DeleteIoSq,
            AdminOpcode::CreateIoSq,
            AdminOpcode::DeleteIoCq,
            AdminOpcode::CreateIoCq,
            AdminOpcode::Identify,
        ] {
            assert_eq!(AdminOpcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(AdminOpcode::from_u8(0xFF), None);
    }
}
