//! Degradation curve: suite speedup as the injected fault rate rises.
//!
//! Sweeps a ladder of fault rates; at each rung every suite application
//! runs conventionally and under Morpheus on the *same* faulty system, so
//! the table shows how gracefully the in-storage path degrades — retried
//! commands, ECC penalties, and the occasional host fallback — while the
//! objects stay bit-identical. Regenerates the EXPERIMENTS.md
//! "fault-rate degradation" table.
//!
//! Flags: the shared harness grammar (`--scale`, `--seed`, `--jobs`);
//! the sweep sets the per-rung fault plans itself, so `--faults` here
//! only overrides the *seed* ladder via its `seed=` key.

use morpheus::Mode;
use morpheus_bench::{geomean, print_table, Harness};
use morpheus_simcore::{FaultCounters, FaultPlan};
use morpheus_workloads::{run_benchmark, suite};

/// The swept fault rates. Per rung `r`, probabilities scale as:
/// correctable flash errors `10r`, uncorrectable `r/10`, NVMe command
/// loss `r`, core stalls `r`, core crashes `r/20`, PCIe degradation `r`.
const RATES: [f64; 6] = [0.0, 1e-4, 5e-4, 2e-3, 1e-2, 5e-2];

fn plan_for(rate: f64, seed: u64) -> Option<FaultPlan> {
    if rate == 0.0 {
        return None;
    }
    let mut p = FaultPlan::none();
    p.seed = seed;
    p.flash_correctable = (10.0 * rate).min(1.0);
    p.flash_uncorrectable = rate / 10.0;
    p.nvme_timeout = rate;
    p.core_stall = rate;
    p.core_crash = rate / 20.0;
    p.pcie_degrade = rate;
    Some(p)
}

fn main() {
    // Suite × rates × two modes: default to a small input scale so the
    // whole sweep stays quick; an explicit --scale still wins because the
    // parser applies flags left to right.
    let mut args: Vec<String> = vec!["--scale".into(), "4096".into()];
    args.extend(std::env::args().skip(1));
    let h = match Harness::parse(&args, &[]) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: [--scale N] [--seed N] [--jobs N] [--faults SPEC]");
            std::process::exit(2);
        }
    };
    let fault_seed = h.faults.map(|p| p.seed).unwrap_or(1);
    println!(
        "Fault-rate degradation: suite deser speedup, morpheus vs baseline (scale 1/{}, fault seed {})\n",
        h.scale, fault_seed
    );
    let benches = suite();
    let mut rows = Vec::new();
    for rate in RATES {
        let hr = Harness {
            faults: plan_for(rate, fault_seed),
            ..h
        };
        let outcomes = hr.run_suite_parallel(&benches, |bench| {
            let mut sys = hr.app_system(bench);
            let conv = run_benchmark(&mut sys, bench, Mode::Conventional);
            let morp = run_benchmark(&mut sys, bench, Mode::Morpheus);
            match (conv, morp) {
                (Ok(c), Ok(m)) => {
                    assert_eq!(
                        c.report.checksum, m.report.checksum,
                        "{}: objects must stay bit-identical under faults",
                        bench.name
                    );
                    Some((m.report.deser_speedup_over(&c.report), m.report.faults))
                }
                // A run may fail cleanly (reissue budget spent); it is
                // reported, not counted into the geomean.
                _ => None,
            }
        });
        let speedups: Vec<f64> = outcomes.iter().flatten().map(|(s, _)| *s).collect();
        let failed = outcomes.len() - speedups.len();
        let mut agg = FaultCounters::default();
        for (_, c) in outcomes.iter().flatten() {
            agg.ecc_corrected += c.ecc_corrected;
            agg.media_retries += c.media_retries;
            agg.media_failures += c.media_failures;
            agg.nvme_timeouts += c.nvme_timeouts;
            agg.nvme_retries += c.nvme_retries;
            agg.core_stalls += c.core_stalls;
            agg.core_crashes += c.core_crashes;
            agg.pcie_degraded += c.pcie_degraded;
            agg.host_fallbacks += c.host_fallbacks;
        }
        rows.push(vec![
            format!("{rate:.0e}"),
            if speedups.is_empty() {
                "-".into()
            } else {
                format!("{:.2}x", geomean(&speedups))
            },
            failed.to_string(),
            agg.ecc_corrected.to_string(),
            agg.nvme_retries.to_string(),
            (agg.core_stalls + agg.core_crashes).to_string(),
            agg.pcie_degraded.to_string(),
            agg.host_fallbacks.to_string(),
        ]);
    }
    print_table(
        &[
            "fault rate",
            "deser speedup",
            "failed",
            "ecc",
            "nvme-retries",
            "core-faults",
            "pcie-degraded",
            "fallbacks",
        ],
        &rows,
    );
    println!();
    println!("speedup is the geomean over suite apps that completed; objects are checked");
    println!("bit-identical between modes at every rate (fallback keeps Morpheus correct).");
}
