//! Flash error types and the bit-error / ECC injection model.

use crate::{BlockId, Ppa};
use std::error::Error;
use std::fmt;

/// Errors returned by the flash array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Address does not name a page in the array.
    OutOfRange(Ppa),
    /// Read of a page that was never programmed since its last erase.
    ReadOfFreePage(Ppa),
    /// Program of a page that already holds data (NAND is program-once).
    ProgramTwice(Ppa),
    /// Program out of page order within a block (NAND requires sequential
    /// programming).
    ProgramOutOfOrder {
        /// The offending page.
        ppa: Ppa,
        /// The next programmable page index in that block.
        expected_page: u32,
    },
    /// Data larger than the page.
    DataTooLarge {
        /// The offending page.
        ppa: Ppa,
        /// Bytes offered.
        len: usize,
        /// Page capacity.
        page_bytes: u32,
    },
    /// Operation on a block that has been retired.
    BadBlock(BlockId),
    /// Read failed even after ECC and retries (injected).
    Uncorrectable(Ppa),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange(p) => write!(f, "physical page {} out of range", p.0),
            FlashError::ReadOfFreePage(p) => write!(f, "read of unprogrammed page {}", p.0),
            FlashError::ProgramTwice(p) => write!(f, "program of already-programmed page {}", p.0),
            FlashError::ProgramOutOfOrder { ppa, expected_page } => write!(
                f,
                "out-of-order program of page {} (block expects page index {expected_page})",
                ppa.0
            ),
            FlashError::DataTooLarge {
                ppa,
                len,
                page_bytes,
            } => write!(
                f,
                "data of {len} bytes does not fit page {} ({page_bytes} bytes)",
                ppa.0
            ),
            FlashError::BadBlock(b) => write!(f, "block {} is retired", b.0),
            FlashError::Uncorrectable(p) => write!(f, "uncorrectable read error on page {}", p.0),
        }
    }
}

impl Error for FlashError {}

/// Bit-error injection and ECC behaviour.
///
/// Per page read, with probability `correctable_prob` the page needs ECC
/// correction (costing `correction_retries` extra read latencies), and with
/// probability `uncorrectable_prob` the read fails outright. Blocks are
/// retired once their erase count reaches `wear_limit`.
#[derive(Debug, Clone, Copy)]
pub struct EccModel {
    /// Probability a read requires ECC retry work.
    pub correctable_prob: f64,
    /// Extra read latencies charged for a correctable error.
    pub correction_retries: u32,
    /// Probability a read is uncorrectable.
    pub uncorrectable_prob: f64,
    /// Erase count at which a block is retired as bad.
    pub wear_limit: u64,
}

impl EccModel {
    /// A model that never injects errors and never wears out (default).
    pub fn perfect() -> Self {
        EccModel {
            correctable_prob: 0.0,
            correction_retries: 0,
            uncorrectable_prob: 0.0,
            wear_limit: u64::MAX,
        }
    }
}

impl Default for EccModel {
    fn default() -> Self {
        Self::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<FlashError> = vec![
            FlashError::OutOfRange(Ppa(1)),
            FlashError::ReadOfFreePage(Ppa(2)),
            FlashError::ProgramTwice(Ppa(3)),
            FlashError::ProgramOutOfOrder {
                ppa: Ppa(4),
                expected_page: 1,
            },
            FlashError::DataTooLarge {
                ppa: Ppa(5),
                len: 9000,
                page_bytes: 4096,
            },
            FlashError::BadBlock(BlockId(6)),
            FlashError::Uncorrectable(Ppa(7)),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn perfect_model_never_fails() {
        let m = EccModel::perfect();
        assert_eq!(m.correctable_prob, 0.0);
        assert_eq!(m.uncorrectable_prob, 0.0);
        assert_eq!(m.wear_limit, u64::MAX);
    }
}
