//! Deterministic fault injection: the plan, the dice, and the counters.
//!
//! The Morpheus reproduction models a device that must keep serving
//! MINIT/MREAD under real-device conditions — flash bit errors, busy
//! embedded cores, lost commands, flapping links. This module provides the
//! *scheduling* half of that story: a [`FaultPlan`] describes what faults
//! exist and how often they fire, and every injection site draws from its
//! own [`SplitMix64`] stream derived from the plan's seed, so
//!
//! * the same plan always produces the same faults (the determinism
//!   contract documented in `docs/FAULT_MODEL.md`), and
//! * fault decisions at one site never perturb another site's stream
//!   (adding an MREAD does not change which PCIe DMA degrades).
//!
//! The *recovery* half (bounded retries with exponential backoff, ECC
//! correction penalties, host fallback) lives with the hardware models and
//! the execution drivers; they report what happened through
//! [`FaultCounters`].
//!
//! # Example
//!
//! ```
//! use morpheus_simcore::FaultPlan;
//!
//! let plan = FaultPlan::parse("seed=7,flash-uncorr=0.001,timeout=0.01").unwrap();
//! assert!(plan.is_active());
//! let mut dice = plan.dice("nvme-timeout", plan.nvme_timeout);
//! let first = dice.roll();
//! // Same plan, same site: same decisions, forever.
//! assert_eq!(plan.dice("nvme-timeout", plan.nvme_timeout).roll(), first);
//! ```

use crate::rng::SplitMix64;
use crate::time::SimDuration;
use std::fmt;

/// A seeded, deterministic schedule of injected faults.
///
/// Built from a small `key=value` spec string (see [`FaultPlan::parse`]) or
/// programmatically. A default plan injects nothing ([`FaultPlan::none`]),
/// and every injection site must check [`is_active`](FaultPlan::is_active)
/// first so a fault-free run stays byte-identical to a build without any
/// fault machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every site derives its own stream from it.
    pub seed: u64,
    /// Probability a flash page read needs ECC correction (latency only).
    pub flash_correctable: f64,
    /// Extra read latencies charged per ECC-corrected read.
    pub flash_correction_retries: u32,
    /// Probability a flash page read fails uncorrectably.
    pub flash_uncorrectable: f64,
    /// Probability an NVMe command is lost before the device sees it.
    pub nvme_timeout: f64,
    /// Simulated time the host waits before declaring a command timed out.
    pub nvme_timeout_ns: u64,
    /// Reissues the host attempts before giving up on a command.
    pub nvme_max_retries: u32,
    /// Base backoff after the first timeout; doubles per further attempt.
    pub nvme_backoff_ns: u64,
    /// Probability a StorageApp command finds its embedded core stalled.
    pub core_stall: f64,
    /// Extra simulated time a stalled core needs before dispatch.
    pub core_stall_ns: u64,
    /// Probability a StorageApp command crashes its embedded core.
    pub core_crash: f64,
    /// Probability a PCIe DMA runs over a degraded (retraining) link.
    pub pcie_degrade: f64,
    /// Service-time multiplier for a degraded DMA (>= 1).
    pub pcie_degrade_factor: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 1,
            flash_correctable: 0.0,
            flash_correction_retries: 3,
            flash_uncorrectable: 0.0,
            nvme_timeout: 0.0,
            nvme_timeout_ns: 100_000,
            nvme_max_retries: 4,
            nvme_backoff_ns: 50_000,
            core_stall: 0.0,
            core_stall_ns: 250_000,
            core_crash: 0.0,
            pcie_degrade: 0.0,
            pcie_degrade_factor: 4.0,
        }
    }

    /// True if any fault can fire under this plan. Injection sites gate on
    /// this so an inactive plan costs one branch.
    pub fn is_active(&self) -> bool {
        self.flash_correctable > 0.0
            || self.flash_uncorrectable > 0.0
            || self.nvme_timeout > 0.0
            || self.core_stall > 0.0
            || self.core_crash > 0.0
            || self.pcie_degrade > 0.0
    }

    /// Parses a comma-separated `key=value` spec, starting from
    /// [`FaultPlan::none`]. Keys:
    ///
    /// | key | meaning |
    /// |---|---|
    /// | `seed` | master seed (u64) |
    /// | `flash-corr` | ECC-correctable read probability |
    /// | `flash-corr-retries` | read latencies charged per correction |
    /// | `flash-uncorr` | uncorrectable read probability |
    /// | `timeout` | NVMe command-loss probability |
    /// | `timeout-us` | host timeout detection window, µs |
    /// | `retries` | NVMe reissue budget |
    /// | `backoff-us` | base reissue backoff, µs (doubles per attempt) |
    /// | `stall` | embedded-core stall probability |
    /// | `stall-us` | stall duration, µs |
    /// | `crash` | embedded-core crash probability |
    /// | `pcie` | degraded-DMA probability |
    /// | `pcie-factor` | degraded-DMA slowdown factor (>= 1) |
    ///
    /// Probabilities must lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, malformed values,
    /// and out-of-range probabilities.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault spec item {item:?} is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("{key} expects a number, got {v:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{key} must be a probability in [0, 1], got {v}"));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("{key} expects an unsigned integer, got {v:?}"))
            };
            match key {
                "seed" => plan.seed = int(value)?,
                "flash-corr" => plan.flash_correctable = prob(value)?,
                "flash-corr-retries" => plan.flash_correction_retries = int(value)? as u32,
                "flash-uncorr" => plan.flash_uncorrectable = prob(value)?,
                "timeout" => plan.nvme_timeout = prob(value)?,
                "timeout-us" => plan.nvme_timeout_ns = int(value)?.saturating_mul(1000),
                "retries" => plan.nvme_max_retries = int(value)? as u32,
                "backoff-us" => plan.nvme_backoff_ns = int(value)?.saturating_mul(1000),
                "stall" => plan.core_stall = prob(value)?,
                "stall-us" => plan.core_stall_ns = int(value)?.saturating_mul(1000),
                "crash" => plan.core_crash = prob(value)?,
                "pcie" => plan.pcie_degrade = prob(value)?,
                "pcie-factor" => {
                    let f: f64 = value
                        .parse()
                        .map_err(|_| format!("pcie-factor expects a number, got {value:?}"))?;
                    if f < 1.0 {
                        return Err(format!("pcie-factor must be >= 1, got {value}"));
                    }
                    plan.pcie_degrade_factor = f;
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The per-site PRNG stream: the master seed mixed with an FNV-1a hash
    /// of the site name, so sites are mutually independent and a site's
    /// stream does not depend on declaration order.
    pub fn stream(&self, site: &str) -> SplitMix64 {
        SplitMix64::new(self.seed ^ fnv1a(site.as_bytes()))
    }

    /// A Bernoulli dice for one site at probability `prob`.
    pub fn dice(&self, site: &str, prob: f64) -> FaultDice {
        FaultDice {
            rng: self.stream(site),
            prob,
        }
    }

    /// Host timeout-detection window as a duration.
    pub fn timeout_window(&self) -> SimDuration {
        SimDuration::from_nanos(self.nvme_timeout_ns)
    }

    /// Reissue backoff before attempt `attempt` (zero-based): the base
    /// doubles per prior attempt, saturating.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shifted = if attempt >= 63 {
            u64::MAX
        } else {
            self.nvme_backoff_ns.saturating_mul(1u64 << attempt)
        };
        SimDuration::from_nanos(shifted)
    }

    /// The duration of one injected core stall.
    pub fn stall_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.core_stall_ns)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// 64-bit FNV-1a over bytes (stable site-name hashing for fault streams).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A per-site Bernoulli dice: one [`SplitMix64`] stream plus a fixed
/// probability. One roll per potential fault keeps decisions aligned to
/// sites regardless of what other sites do.
#[derive(Debug, Clone)]
pub struct FaultDice {
    rng: SplitMix64,
    prob: f64,
}

impl FaultDice {
    /// Rolls the dice: true means the fault fires.
    pub fn roll(&mut self) -> bool {
        // A zero probability must not advance the stream differently from
        // an active one; chance() always consumes exactly one draw.
        self.rng.chance(self.prob)
    }
}

/// What the fault plane injected and the recovery machinery absorbed
/// during one run. All zero when no plan is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Flash reads that needed ECC correction (latency penalty only).
    pub ecc_corrected: u64,
    /// FTL read retries after uncorrectable flash errors.
    pub media_retries: u64,
    /// Reads that stayed uncorrectable after the FTL's retry budget.
    pub media_failures: u64,
    /// NVMe commands the host declared timed out.
    pub nvme_timeouts: u64,
    /// NVMe commands reissued after a timeout.
    pub nvme_retries: u64,
    /// StorageApp commands delayed by an embedded-core stall.
    pub core_stalls: u64,
    /// StorageApp commands that crashed their embedded core.
    pub core_crashes: u64,
    /// PCIe DMAs that ran over a degraded link.
    pub pcie_degraded: u64,
    /// Runs (0 or 1 per report) that fell back to host deserialization.
    pub host_fallbacks: u64,
}

impl FaultCounters {
    /// True if any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }
}

impl fmt::Display for FaultCounters {
    /// One stable line, suitable for byte-diffed CI output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ecc_corrected={} media_retries={} media_failures={} nvme_timeouts={} \
             nvme_retries={} core_stalls={} core_crashes={} pcie_degraded={} host_fallbacks={}",
            self.ecc_corrected,
            self.media_retries,
            self.media_failures,
            self.nvme_timeouts,
            self.nvme_retries,
            self.core_stalls,
            self.core_crashes,
            self.pcie_degraded,
            self.host_fallbacks
        )
    }
}

/// Renders an error and its full [`source`](std::error::Error::source)
/// chain as `outer: cause: root`, so fallback logs show root causes.
///
/// Error types in this workspace keep their `Display` free of source text
/// (the chain is reachable through `source()` alone), so each cause
/// appears exactly once in the rendering.
pub fn render_error_chain(err: &(dyn std::error::Error + 'static)) -> String {
    let mut s = err.to_string();
    let mut cur = err.source();
    while let Some(e) = cur {
        s.push_str(": ");
        s.push_str(&e.to_string());
        cur = e.source();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn parse_full_grammar() {
        let p = FaultPlan::parse(
            "seed=9,flash-corr=0.5,flash-corr-retries=2,flash-uncorr=0.25,\
             timeout=0.125,timeout-us=50,retries=3,backoff-us=10,\
             stall=0.0625,stall-us=300,crash=0.03125,pcie=0.5,pcie-factor=8",
        )
        .unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.flash_correctable, 0.5);
        assert_eq!(p.flash_correction_retries, 2);
        assert_eq!(p.flash_uncorrectable, 0.25);
        assert_eq!(p.nvme_timeout, 0.125);
        assert_eq!(p.nvme_timeout_ns, 50_000);
        assert_eq!(p.nvme_max_retries, 3);
        assert_eq!(p.nvme_backoff_ns, 10_000);
        assert_eq!(p.core_stall, 0.0625);
        assert_eq!(p.core_stall_ns, 300_000);
        assert_eq!(p.core_crash, 0.03125);
        assert_eq!(p.pcie_degrade, 0.5);
        assert_eq!(p.pcie_degrade_factor, 8.0);
        assert!(p.is_active());
    }

    #[test]
    fn parse_tolerates_whitespace_and_empty_items() {
        let p = FaultPlan::parse(" seed=3 , timeout=0.1 ,, ").unwrap();
        assert_eq!(p.seed, 3);
        assert_eq!(p.nvme_timeout, 0.1);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "seed",             // no '='
            "seed=abc",         // malformed int
            "timeout=1.5",      // out of range
            "timeout=-0.1",     // out of range
            "pcie-factor=0.5",  // below 1
            "warp-drive=0.5",   // unknown key
            "flash-corr=maybe", // malformed float
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_spec_is_inactive() {
        assert!(!FaultPlan::parse("").unwrap().is_active());
        assert!(!FaultPlan::parse("seed=123").unwrap().is_active());
    }

    #[test]
    fn sites_are_independent_and_deterministic() {
        let plan = FaultPlan::parse("seed=11,timeout=0.5").unwrap();
        let a: Vec<u64> = {
            let mut s = plan.stream("nvme-timeout");
            (0..8).map(|_| s.next_u64()).collect()
        };
        let again: Vec<u64> = {
            let mut s = plan.stream("nvme-timeout");
            (0..8).map(|_| s.next_u64()).collect()
        };
        let other: Vec<u64> = {
            let mut s = plan.stream("core-crash");
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, again, "same site must replay identically");
        assert_ne!(a, other, "distinct sites must diverge");
    }

    #[test]
    fn seeds_change_every_stream() {
        let a = FaultPlan::parse("seed=1,timeout=0.5").unwrap();
        let b = FaultPlan::parse("seed=2,timeout=0.5").unwrap();
        assert_ne!(
            a.stream("nvme-timeout").next_u64(),
            b.stream("nvme-timeout").next_u64()
        );
    }

    #[test]
    fn dice_extremes() {
        let plan = FaultPlan::none();
        assert!(!plan.dice("x", 0.0).roll());
        assert!(plan.dice("x", 1.0).roll());
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let plan = FaultPlan::parse("backoff-us=10").unwrap();
        assert_eq!(plan.backoff(0), SimDuration::from_nanos(10_000));
        assert_eq!(plan.backoff(1), SimDuration::from_nanos(20_000));
        assert_eq!(plan.backoff(2), SimDuration::from_nanos(40_000));
        assert_eq!(plan.backoff(80), SimDuration::from_nanos(u64::MAX));
    }

    #[test]
    fn counters_display_is_stable_and_complete() {
        let c = FaultCounters {
            ecc_corrected: 1,
            host_fallbacks: 2,
            ..FaultCounters::default()
        };
        let s = c.to_string();
        assert!(s.contains("ecc_corrected=1"));
        assert!(s.contains("host_fallbacks=2"));
        assert!(c.any());
        assert!(!FaultCounters::default().any());
    }

    #[test]
    fn error_chain_renders_each_cause_once() {
        use std::fmt;

        #[derive(Debug)]
        struct Root;
        impl fmt::Display for Root {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("root cause")
            }
        }
        impl std::error::Error for Root {}

        #[derive(Debug)]
        struct Outer(Root);
        impl fmt::Display for Outer {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("outer failure")
            }
        }
        impl std::error::Error for Outer {
            fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
                Some(&self.0)
            }
        }

        let rendered = render_error_chain(&Outer(Root));
        assert_eq!(rendered, "outer failure: root cause");
        assert_eq!(rendered.matches("root cause").count(), 1);
    }
}
