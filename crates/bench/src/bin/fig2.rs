//! Figure 2: execution-time breakdown of the conventional model.
//!
//! Paper claim: with a high-speed NVMe SSD, the ten applications spend
//! **~64 % of execution time deserializing objects**; the rest is other CPU
//! computation, CPU↔GPU copies, and GPU kernels.

use morpheus::Mode;
use morpheus_bench::{mean, print_table, run_mode, Harness};
use morpheus_workloads::suite;

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 2: conventional execution-time breakdown (scale 1/{})\n",
        h.scale
    );
    let benches = suite();
    let outs = h.run_suite_parallel(&benches, |bench| run_mode(&h, bench, Mode::Conventional));
    let mut rows = Vec::new();
    let mut fracs = Vec::new();
    for (bench, out) in benches.iter().zip(&outs) {
        let p = out.report.phases;
        let total = p.total_s();
        fracs.push(p.deserialization_fraction());
        rows.push(vec![
            bench.name.to_string(),
            format!("{:.3}", total),
            format!("{:.1}%", 100.0 * p.deserialization_s / total),
            format!("{:.1}%", 100.0 * p.other_cpu_s / total),
            format!("{:.1}%", 100.0 * p.copy_s / total),
            format!("{:.1}%", 100.0 * p.kernel_s / total),
        ]);
    }
    print_table(
        &[
            "app",
            "total_s",
            "deserialize",
            "other_cpu",
            "copy",
            "kernel",
        ],
        &rows,
    );
    println!();
    println!(
        "average deserialization fraction: {:.1}%  (paper: ~64%)",
        100.0 * mean(&fracs)
    );
}
